"""Functional local engine: a facade over the unified runtime layer.

Historically this module *was* the executor: it expanded the replicated
dataflow into tasks, queues and routing tables and walked them inline.
That expansion now lives in :mod:`repro.runtime.lowering` (shared with the
discrete-event simulator) and the execution strategies live behind
:class:`repro.runtime.backends.ExecutorBackend`:

* ``backend="inline"`` (default) — deterministic single-process execution
  with the seed engine's exact semantics; with bounded queues it adds
  blocking-producer backpressure.
* ``backend="process"`` — parallel execution on multiprocessing workers
  grouped by plan socket (see :mod:`repro.runtime.process_pool`).

The engine keeps serving its three original purposes — validating
application logic, measuring selectivities/tuple sizes for model
instantiation, and feeding the profiler — while delegating *how* tuples
move to the chosen backend.  :class:`TaskStats` and :class:`RunResult`
are re-exported from :mod:`repro.runtime.results` for compatibility.
"""

from __future__ import annotations

from typing import Mapping

from repro.dsps.graph import ExecutionGraph
from repro.dsps.topology import Topology
from repro.errors import ExecutionError
from repro.metrics.registry import NULL_REGISTRY, MetricsRegistry
from repro.runtime.backends import ExecutorBackend, resolve_backend
from repro.runtime.batching import AdaptiveBatchConfig
from repro.runtime.epochs import EpochConfig
from repro.runtime.faults import FaultPlan
from repro.runtime.fusion import FusionConfig, as_fusion_config, plan_fusion
from repro.runtime.lowering import RuntimeSpec, lower_graph, lower_plan
from repro.runtime.overload import OverloadConfig
from repro.runtime.reconfigure import ReconfigController
from repro.runtime.results import RunResult, TaskStats
from repro.runtime.supervisor import DegradeContext, Supervisor

__all__ = ["LocalEngine", "RunResult", "TaskStats"]


def _validate_queue_bounds(
    queue_capacity: int | None, queue_budget: int | None
) -> None:
    if queue_capacity is not None and queue_capacity <= 0:
        raise ExecutionError(
            f"queue_capacity must be positive, got {queue_capacity}"
        )
    if queue_budget is not None and queue_budget <= 0:
        raise ExecutionError(f"queue_budget must be positive, got {queue_budget}")


def _validate_batch_size(batch_size: int) -> int:
    if batch_size < 1:
        raise ExecutionError(f"batch_size must be >= 1, got {batch_size}")
    return batch_size


def _coerce_adaptive(
    adaptive_batch: "AdaptiveBatchConfig | bool | None",
    epoch_interval: int | None,
) -> AdaptiveBatchConfig | None:
    """Normalize the engine's ``adaptive_batch`` argument.

    ``True`` selects the default AIMD parameters; a config object is
    passed through.  The controller only acts at epoch barriers, so
    enabling it without ``epoch_interval`` would silently do nothing —
    fail loudly instead.
    """
    if adaptive_batch is None or adaptive_batch is False:
        return None
    config = (
        AdaptiveBatchConfig() if adaptive_batch is True else adaptive_batch
    )
    if epoch_interval is None:
        raise ExecutionError(
            "adaptive batch sizing adjusts at epoch barriers: "
            "pass epoch_interval together with adaptive_batch"
        )
    return config


def _coerce_overload(
    overload: "OverloadConfig | Mapping[str, object] | bool | None",
    epoch_interval: int | None,
) -> OverloadConfig | None:
    """Normalize the engine's ``overload`` argument.

    ``True`` selects the default knobs; a mapping is expanded into
    :class:`~repro.runtime.overload.OverloadConfig` kwargs (the CLI
    path); a config object is passed through.  The ladder only steps at
    epoch barriers, so arming it without ``epoch_interval`` would
    silently do nothing — fail loudly instead.
    """
    if overload is None or overload is False:
        return None
    if overload is True:
        config = OverloadConfig()
    elif isinstance(overload, OverloadConfig):
        config = overload
    else:
        config = OverloadConfig(**dict(overload))
    if epoch_interval is None:
        raise ExecutionError(
            "overload control steps at epoch barriers: "
            "pass epoch_interval together with overload"
        )
    return config


def _barriers(
    epoch_interval: int | None, reconfig: ReconfigController | None
) -> EpochConfig | None:
    """Validate and build the epoch-barrier configuration."""
    if reconfig is not None and epoch_interval is None:
        raise ExecutionError(
            "live reconfiguration requires epoch barriers: "
            "pass epoch_interval together with reconfig"
        )
    if epoch_interval is None:
        return None
    return EpochConfig(interval=epoch_interval)


def _supervise(
    backend: ExecutorBackend,
    fault_plan: FaultPlan | None,
    recovery_policy: str | None,
    max_restarts: int,
    degrade: DegradeContext | None,
) -> ExecutorBackend:
    """Wrap ``backend`` in a Supervisor when fault tolerance is requested."""
    if fault_plan is None and recovery_policy is None:
        return backend
    return Supervisor(
        backend,
        policy=recovery_policy or "fail-fast",
        fault_plan=fault_plan,
        max_restarts=max_restarts,
        degrade=degrade,
    )


class LocalEngine:
    """Functional executor for a topology, pluggable in how it runs."""

    def __init__(
        self,
        topology: Topology,
        replication: Mapping[str, int] | None = None,
        batch_size: int = 64,
        registry: MetricsRegistry | None = None,
        *,
        backend: "str | ExecutorBackend" = "inline",
        queue_capacity: int | None = None,
        queue_budget: int | None = None,
        n_workers: int | None = None,
        dataplane: str | None = None,
        vectorized: str | None = None,
        string_dict: str | None = None,
        fault_plan: FaultPlan | None = None,
        recovery_policy: str | None = None,
        max_restarts: int = 3,
        degrade: DegradeContext | None = None,
        epoch_interval: int | None = None,
        reconfig: ReconfigController | None = None,
        fuse: "str | FusionConfig | None" = None,
        adaptive_batch: "AdaptiveBatchConfig | bool | None" = None,
        overload: "OverloadConfig | Mapping[str, object] | bool | None" = None,
    ) -> None:
        """
        Parameters
        ----------
        topology:
            The validated application DAG.
        replication:
            Replicas per component; defaults to each component's
            parallelism hint.
        batch_size:
            Jumbo-tuple batch size used on every producer/consumer pair.
        registry:
            Metrics sink for run instrumentation (tuple counts, queue
            depths, per-operator wall-clock).  Defaults to the shared
            :data:`~repro.metrics.registry.NULL_REGISTRY`, in which case
            the hot path stays the uninstrumented loop.
        backend:
            Executor backend name (``"inline"``/``"process"``) or a
            ready-made :class:`~repro.runtime.backends.ExecutorBackend`.
        queue_capacity:
            Uniform per-edge tuple bound.  ``None`` together with
            ``queue_budget=None`` leaves queues unbounded (the historical
            engine semantics, still the default).
        queue_budget:
            Per-consumer-task buffered-tuple budget, split over the
            consumer's input edges (mutually exclusive with
            ``queue_capacity``).
        n_workers:
            Worker-process count when ``backend="process"`` is given by
            name; ignored otherwise.
        dataplane:
            Remote-batch transport when ``backend="process"`` is given by
            name: ``"pickle"`` (default) or ``"shm"`` (shared-memory
            rings + binary codec; see docs/dataplane.md).  Validated but
            otherwise ignored for the single-process inline backend.
        vectorized:
            Columnar kernel dispatch when the backend is given by name:
            ``"auto"`` (default — use vectorized kernels when numpy and
            the operator support them), ``"on"`` (fail loudly without
            numpy) or ``"off"`` (scalar dispatch only); see
            docs/vectorized.md.
        string_dict:
            Adaptive string-dictionary encoding on the shm data plane
            when the backend is given by name: ``"auto"`` (default —
            per-edge string columns promote to dictionary codes once
            observed repetition warrants it), ``"on"`` (every string
            column promotes immediately) or ``"off"`` (raw strings on
            the wire); see docs/dataplane.md.  Accepted-and-ignored by
            the inline backend, which moves no bytes.
        fault_plan:
            Optional :class:`~repro.runtime.faults.FaultPlan` — chaos
            runs; implies supervised execution.
        recovery_policy:
            Optional policy (``fail-fast``/``retry``/``degrade``) — wraps
            the backend in a :class:`~repro.runtime.supervisor.Supervisor`.
        max_restarts:
            Restart bound for ``retry``/``degrade`` recovery.
        degrade:
            :class:`~repro.runtime.supervisor.DegradeContext`; required
            when ``recovery_policy="degrade"``.
        epoch_interval:
            When set, run with *epoch barriers*: commit a consistent
            operator-state checkpoint every ``epoch_interval`` events per
            spout replica.  Supervised ``retry`` runs then resume from
            the last committed epoch instead of replaying from the start
            (see docs/reconfiguration.md).
        reconfig:
            Optional :class:`~repro.runtime.reconfigure.ReconfigController`
            consulted at every barrier commit; when the observed workload
            drifts it re-plans the placement and migrates the running
            dataflow live.  Requires ``epoch_interval``.
        fuse:
            Runtime operator-chain fusion (see docs/fusion.md): a mode
            name (``"auto"``/``"on"``/``"off"``) or a full
            :class:`~repro.runtime.fusion.FusionConfig`.  ``None`` (the
            default) keeps fusion off — the historical behavior.
        adaptive_batch:
            Per-edge AIMD batch sizing: ``True`` for the default
            :class:`~repro.runtime.batching.AdaptiveBatchConfig`, or a
            config object.  Requires ``epoch_interval`` (adjustments
            happen only at barriers).
        overload:
            Overload control (see docs/overload.md): ``True`` for the
            default :class:`~repro.runtime.overload.OverloadConfig`, a
            mapping of its kwargs, or a config object.  Arms per-edge
            lag tracking, the hysteretic degradation ladder (batch
            shrink / load shedding / spout throttling / degrade replan)
            and the ``data.overload`` run-report timeline.  Requires
            ``epoch_interval`` (the ladder steps only at barriers).
        """
        _validate_queue_bounds(queue_capacity, queue_budget)
        _validate_batch_size(batch_size)
        self.topology = topology
        if replication is None:
            replication = {
                name: spec.parallelism_hint
                for name, spec in topology.components.items()
            }
        self.graph = ExecutionGraph(topology, replication, group_size=1)
        self.batch_size = batch_size
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.epochs = _barriers(epoch_interval, reconfig)
        self.reconfig = reconfig
        fusion = as_fusion_config(fuse)
        batching = _coerce_adaptive(adaptive_batch, epoch_interval)
        overload_config = _coerce_overload(overload, epoch_interval)
        self.spec = plan_fusion(
            lower_graph(
                topology,
                self.graph,
                batch_size=batch_size,
                queue_capacity=queue_capacity,
                queue_budget=queue_budget,
            ),
            fusion,
        )
        self.backend = _supervise(
            resolve_backend(
                backend,
                n_workers=n_workers,
                dataplane=dataplane,
                vectorized=vectorized,
                string_dict=string_dict,
                fuse=fusion.mode,
                batching=batching,
                overload=overload_config,
            ),
            fault_plan,
            recovery_policy,
            max_restarts,
            degrade,
        )

    @classmethod
    def from_plan(
        cls,
        plan,
        *,
        batch_size: int = 64,
        registry: MetricsRegistry | None = None,
        backend: "str | ExecutorBackend" = "inline",
        queue_capacity: int | None = None,
        queue_budget: int | None = None,
        n_workers: int | None = None,
        dataplane: str | None = None,
        vectorized: str | None = None,
        string_dict: str | None = None,
        fault_plan: FaultPlan | None = None,
        recovery_policy: str | None = None,
        max_restarts: int = 3,
        degrade: DegradeContext | None = None,
        epoch_interval: int | None = None,
        reconfig: ReconfigController | None = None,
        fuse: "str | FusionConfig | None" = None,
        adaptive_batch: "AdaptiveBatchConfig | bool | None" = None,
        overload: "OverloadConfig | Mapping[str, object] | bool | None" = None,
    ) -> "LocalEngine":
        """Build an engine from a complete :class:`~repro.core.plan.ExecutionPlan`.

        Plan-driven engines run *bounded* by default: capacities derive
        from the plan's queue budget, and tasks carry their socket
        placement (which the process backend uses to group workers).
        This is the entry point live reconfiguration uses: the spec's
        task ids line up with the optimized plan's expanded graph, so a
        :class:`~repro.runtime.reconfigure.ReconfigController` built from
        the same plan can map replanned placements onto running tasks.
        """
        _validate_queue_bounds(queue_capacity, queue_budget)
        _validate_batch_size(batch_size)
        fusion = as_fusion_config(fuse)
        batching = _coerce_adaptive(adaptive_batch, epoch_interval)
        overload_config = _coerce_overload(overload, epoch_interval)
        spec = plan_fusion(
            lower_plan(
                plan,
                batch_size=batch_size,
                queue_capacity=queue_capacity,
                **(
                    {}
                    if queue_budget is None
                    else {"queue_budget": queue_budget}
                ),
            ),
            fusion,
        )
        engine = cls.__new__(cls)
        engine.topology = spec.topology
        engine.graph = spec.graph
        engine.batch_size = batch_size
        engine.registry = registry if registry is not None else NULL_REGISTRY
        engine.epochs = _barriers(epoch_interval, reconfig)
        engine.reconfig = reconfig
        engine.spec = spec
        engine.backend = _supervise(
            resolve_backend(
                backend,
                n_workers=n_workers,
                dataplane=dataplane,
                vectorized=vectorized,
                string_dict=string_dict,
                fuse=fusion.mode,
                batching=batching,
                overload=overload_config,
            ),
            fault_plan,
            recovery_policy,
            max_restarts,
            degrade,
        )
        return engine

    def run(self, max_events: int) -> RunResult:
        """Ingest up to ``max_events`` external events per spout replica and
        process the DAG to completion.

        Returns per-task statistics plus the live sink instances, whose
        application-level state (counters, detected spikes...) callers can
        inspect directly.
        """
        kwargs: dict = {}
        if self.epochs is not None:
            kwargs["epochs"] = self.epochs
            if self.reconfig is not None:
                kwargs["on_epoch"] = self.reconfig.on_epoch
        result = self.backend.execute(
            self.spec, max_events, self.registry, **kwargs
        )
        if self.reconfig is not None:
            result.reconfig = self.reconfig.report
        return result

    def describe(self) -> str:
        """Human-readable summary of the lowered runtime configuration."""
        return self.spec.describe()
