"""Bounded communication queues with backpressure accounting.

Each consumer task owns one input queue per producer task.  BriskStream
enqueues *jumbo tuples* (batches sharing one header), so an insertion costs
one queue operation regardless of how many tuples it carries.

Queues are used in two modes:

* the functional :class:`~repro.dsps.engine.LocalEngine` uses them as plain
  FIFOs to move real tuples between operator replicas;
* the discrete-event simulator bounds them and uses :meth:`QueueStats` to
  account for blocking (backpressure) time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.dsps.tuples import JumboTuple, StreamTuple
from repro.errors import SimulationError


@dataclass
class QueueStats:
    """Counters describing one queue's lifetime behaviour."""

    enqueued_batches: int = 0
    enqueued_tuples: int = 0
    dequeued_tuples: int = 0
    rejected_batches: int = 0
    max_depth_tuples: int = 0
    #: Backpressure episodes: times a producer had to suspend because a
    #: sealed batch did not fit (incremented by the executing backend once
    #: per episode, not per retry).
    blocked_batches: int = 0
    #: Wall-clock (live runs) or virtual (DES) nanoseconds producers spent
    #: suspended on this queue.
    blocked_ns: float = 0.0

    @property
    def pending_tuples(self) -> int:
        return self.enqueued_tuples - self.dequeued_tuples

    @property
    def mean_batch_tuples(self) -> float:
        """Average sealed jumbo-tuple size actually enqueued."""
        if self.enqueued_batches == 0:
            return 0.0
        return self.enqueued_tuples / self.enqueued_batches

    def jumbo_fill_ratio(self, batch_size: int) -> float:
        """Mean enqueued batch size as a fraction of the target size.

        1.0 means every jumbo tuple sealed full; low values mean flushes
        (end of input, timeouts) dominated and batching bought little.
        """
        if batch_size <= 0:
            return 0.0
        return self.mean_batch_tuples / batch_size


class CommunicationQueue:
    """A bounded FIFO of jumbo tuples between one producer/consumer pair.

    Parameters
    ----------
    producer:
        Producer task id (bookkeeping only).
    consumer:
        Consumer task id (bookkeeping only).
    capacity_tuples:
        Maximum number of buffered tuples before the queue reports itself
        full (``None`` = unbounded, the functional engine's default).
    """

    def __init__(
        self,
        producer: int,
        consumer: int,
        capacity_tuples: int | None = None,
    ) -> None:
        if capacity_tuples is not None and capacity_tuples < 1:
            raise SimulationError("queue capacity must be >= 1 tuple")
        self.producer = producer
        self.consumer = consumer
        self.capacity_tuples = capacity_tuples
        self.stats = QueueStats()
        self._batches: deque[JumboTuple] = deque()
        self._depth_tuples = 0

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    @property
    def is_full(self) -> bool:
        """True when no more tuples fit (backpressure to the producer)."""
        if self.capacity_tuples is None:
            return False
        return self._depth_tuples >= self.capacity_tuples

    def has_space(self, tuples: int) -> bool:
        """True when ``tuples`` more tuples fit without exceeding capacity."""
        if self.capacity_tuples is None:
            return True
        return self._depth_tuples + tuples <= self.capacity_tuples

    def offer(self, batch: JumboTuple) -> bool:
        """Try to enqueue ``batch``; returns False when full (no partial add)."""
        if not batch.tuples:
            return True
        if (
            self.capacity_tuples is not None
            and self._depth_tuples + len(batch) > self.capacity_tuples
        ):
            self.stats.rejected_batches += 1
            return False
        self._batches.append(batch)
        self._depth_tuples += len(batch)
        self.stats.enqueued_batches += 1
        self.stats.enqueued_tuples += len(batch)
        self.stats.max_depth_tuples = max(self.stats.max_depth_tuples, self._depth_tuples)
        return True

    def put(self, batch: JumboTuple) -> None:
        """Enqueue ``batch`` or raise when the queue is full."""
        if not self.offer(batch):
            raise SimulationError(
                f"queue {self.producer}->{self.consumer} full "
                f"({self._depth_tuples}/{self.capacity_tuples} tuples)"
            )

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    @property
    def depth_tuples(self) -> int:
        """Buffered tuple count."""
        return self._depth_tuples

    @property
    def is_empty(self) -> bool:
        return not self._batches

    def poll(self) -> JumboTuple | None:
        """Dequeue the oldest jumbo tuple, or None when empty."""
        if not self._batches:
            return None
        batch = self._batches.popleft()
        self._depth_tuples -= len(batch)
        self.stats.dequeued_tuples += len(batch)
        return batch

    def drain_tuples(self, max_tuples: int | None = None) -> list[StreamTuple]:
        """Dequeue whole batches until ``max_tuples`` tuples are collected.

        Batches are never split (a jumbo tuple is consumed as a unit), so
        slightly more than ``max_tuples`` tuples may be returned.
        """
        drained: list[StreamTuple] = []
        while self._batches:
            if max_tuples is not None and len(drained) >= max_tuples:
                break
            batch = self.poll()
            assert batch is not None
            drained.extend(batch.tuples)
        return drained


class OutputBuffer:
    """Per-(producer, consumer) accumulation buffer forming jumbo tuples.

    The partition controller appends output tuples here; once
    ``batch_size`` tuples accumulate (or on :meth:`flush`), they are sealed
    into one :class:`JumboTuple` and handed to the communication queue.
    """

    def __init__(self, producer: int, consumer: int, batch_size: int = 64) -> None:
        if batch_size < 1:
            raise SimulationError("jumbo tuple batch size must be >= 1")
        self.producer = producer
        self.consumer = consumer
        self.batch_size = batch_size
        self._pending: list[StreamTuple] = []
        self.sealed_batches = 0

    def append(self, item: StreamTuple) -> JumboTuple | None:
        """Buffer ``item``; return a sealed jumbo tuple when the batch fills."""
        self._pending.append(item)
        if len(self._pending) >= self.batch_size:
            return self._seal()
        return None

    def flush(self) -> JumboTuple | None:
        """Seal whatever is pending (end of input / timeout path)."""
        if not self._pending:
            return None
        return self._seal()

    @property
    def pending(self) -> int:
        return len(self._pending)

    def _seal(self) -> JumboTuple:
        batch = JumboTuple(
            source_task=self.producer,
            target_task=self.consumer,
            tuples=self._pending,
        )
        self._pending = []
        self.sealed_batches += 1
        return batch
