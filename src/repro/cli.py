"""Command-line interface: run, optimize, simulate and inspect from a shell.

Examples::

    python -m repro machines
    python -m repro run wc --events 5000 --emit-metrics wc_run.json
    python -m repro run wc --backend process --workers 2 --events 5000
    python -m repro optimize --app wc --server A --sockets 8
    python -m repro simulate --app lr --server B --latency
    python -m repro profile --app sd
"""

from __future__ import annotations

import argparse
import sys

from repro.apps import APP_NAMES, build_wordcount, load_application
from repro.core import PerformanceModel, RLASOptimizer, TfMode
from repro.core.scaling import saturation_ingress
from repro.dsps.engine import LocalEngine
from repro.errors import ExecutionError
from repro.hardware import server_a, server_b
from repro.metrics import MetricsRegistry, build_report, format_table, write_report
from repro.runtime import (
    DATAPLANE_NAMES,
    FUSE_MODES,
    RECOVERY_POLICIES,
    SHED_MODES,
    STRING_DICT_MODES,
    VECTORIZED_MODES,
    AdaptiveBatchConfig,
    DegradeContext,
    FaultPlan,
    FusionConfig,
    OverloadConfig,
    ProcessPoolBackend,
    ReconfigController,
)
from repro.simulation import DiscreteEventSimulator, FlowSimulator

_SERVERS = {"A": server_a, "B": server_b}


def _machine(args: argparse.Namespace):
    return _SERVERS[args.server](args.sockets)


def _registry(args: argparse.Namespace) -> MetricsRegistry | None:
    """A live registry when ``--emit-metrics`` was requested, else None."""
    return MetricsRegistry() if getattr(args, "emit_metrics", None) else None


def _emit(
    args: argparse.Namespace,
    kind: str,
    registry: MetricsRegistry | None,
    meta: dict,
    data: dict | None = None,
) -> None:
    if registry is None or not args.emit_metrics:
        return
    report = build_report(
        kind=kind, name=args.app, registry=registry, meta=meta, data=data
    )
    path = write_report(args.emit_metrics, report)
    print(f"metrics report written to {path}")


def _optimize(args: argparse.Namespace, registry: MetricsRegistry | None = None):
    topology, profiles = load_application(args.app)
    machine = _machine(args)
    model = PerformanceModel(profiles, machine)
    rate = args.rate or saturation_ingress(topology, model)
    plan = RLASOptimizer(
        topology,
        profiles,
        machine,
        rate,
        tf_mode=TfMode(args.tf_mode),
        compress_ratio=args.compress_ratio,
        registry=registry,
        opt_workers=args.opt_workers,
    ).optimize()
    print(plan.describe())
    return plan, rate, profiles, machine


def cmd_machines(args: argparse.Namespace) -> int:
    rows = []
    for name, factory in _SERVERS.items():
        d = factory().describe()
        rows.append(
            [
                name,
                d["processor"],
                d["one_hop_latency_ns"],
                d["max_hops_latency_ns"],
                d["total_local_bandwidth_gb_s"],
            ]
        )
    print(
        format_table(
            ["server", "processor", "1-hop ns", "max-hop ns", "total B/W GB/s"],
            rows,
            title="Available machine models (Table 2)",
        )
    )
    return 0


def _overload_config(args: argparse.Namespace) -> OverloadConfig | None:
    """Build cmd_run's overload config from ``--max-lag-ms``/``--shed``.

    Overload control is armed when either knob departs from its inert
    default; with both at rest the run carries no overload machinery at
    all, preserving pre-overload behavior bit for bit.
    """
    if args.max_lag_ms is None and args.shed == "off":
        return None
    return OverloadConfig(
        max_lag_ms=args.max_lag_ms,
        shed_mode=args.shed,
        shed_rate=args.shed_rate,
        shed_seed=args.shed_seed,
    )


def _run_backend(args: argparse.Namespace):
    """Resolve cmd_run's backend, applying the watchdog override."""
    if args.backend == "process" and args.watchdog_timeout is not None:
        return ProcessPoolBackend(
            n_workers=args.workers,
            heartbeat_timeout_s=args.watchdog_timeout,
            dataplane=args.dataplane,
            vectorized=args.vectorized,
            string_dict=args.string_dict,
            batching=(
                AdaptiveBatchConfig() if args.adaptive_batch else None
            ),
            overload=_overload_config(args),
        )
    return args.backend


def _run_fusion(args: argparse.Namespace, profiles) -> FusionConfig:
    """cmd_run's fusion config: mode from ``--fuse``, with the app's
    measured profiles and the selected machine model attached so ``auto``
    applies the RLAS cost model's profitability test."""
    return FusionConfig(
        mode=args.fuse,
        profiles=profiles,
        machine=_machine(args),
    )


def _recovery_data(recovery, fault_summary) -> dict:
    """Report payload for a (possibly absent) recovery outcome."""
    data: dict = {}
    if recovery is not None:
        data["recovery"] = recovery.to_dict()
    if fault_summary:
        data["fault_summary"] = dict(fault_summary)
    return data


def _run_data(result) -> dict:
    """Full run-report payload: recovery + epoch + reconfig + overload."""
    data = _recovery_data(result.recovery, result.fault_summary)
    if result.epochs is not None:
        data["epochs"] = result.epochs.to_dict()
    if result.reconfig is not None:
        data["reconfig"] = result.reconfig.to_dict()
    if result.overload is not None:
        data["overload"] = result.overload.to_dict()
    return data


def _shifted_topology(args: argparse.Namespace, topology):
    """Apply the WC mid-stream workload-shift flags, when given."""
    if args.shift_at is None and args.shift_words is None:
        return topology
    if args.app != "wc":
        raise ExecutionError(
            "--shift-at/--shift-words model WC's sentence-length shift "
            f"and require app 'wc', got {args.app!r}"
        )
    if args.shift_at is None or args.shift_words is None:
        raise ExecutionError(
            "--shift-at and --shift-words must be given together"
        )
    if args.shift_at <= 0 or args.shift_words <= 0:
        raise ExecutionError(
            "--shift-at and --shift-words must be positive, got "
            f"{args.shift_at} and {args.shift_words}"
        )
    return build_wordcount(
        shift_at=args.shift_at, shift_words_per_sentence=args.shift_words
    )


def _adapt_setup(args: argparse.Namespace, topology, profiles, registry):
    """Optimize a deployment plan and build the reconfiguration controller.

    ``--adapt`` runs the plan-driven engine: RLAS places the topology for
    the machine model first (the spec then carries socket placements the
    controller can migrate), and a :class:`ReconfigController` watches
    every epoch barrier for workload drift.
    """
    if args.epoch_interval is None:
        raise ExecutionError(
            "--adapt requires --epoch-interval: live reconfiguration "
            "happens at epoch barriers"
        )
    machine = _SERVERS[args.server](args.sockets)
    model = PerformanceModel(profiles, machine)
    rate = args.rate or saturation_ingress(topology, model)
    plan = RLASOptimizer(topology, profiles, machine, rate).optimize()
    controller = ReconfigController(
        plan,
        profiles,
        rate,
        replace_threshold=args.replace_threshold,
        reoptimize_threshold=args.reoptimize_threshold,
        registry=registry,
    )
    return plan, controller


def _print_epochs(result) -> None:
    report = result.epochs
    if report is None:
        return
    print(
        f"epochs [interval {report.interval}]: committed={report.committed} "
        f"barrier_ms={report.barrier_ns / 1e6:.2f} "
        f"snapshot_bytes={report.snapshot_bytes} "
        f"migrations={report.migrations} "
        f"pause_ms={report.migration_pause_ns / 1e6:.2f}"
    )


def _print_reconfig(result) -> None:
    report = result.reconfig
    if report is None:
        return
    print(
        f"reconfig: observations={report.observations} "
        f"replans={report.replans} migrations={report.migrations} "
        f"rejected={report.rejected}"
    )
    for event in report.events:
        line = (
            f"  epoch {event['epoch']}: {event['action']} "
            f"(drift {event['magnitude']:.3f}) -> {event['outcome']}"
        )
        if event["moved"]:
            line += f", moved {len(event['moved'])} tasks"
        print(line)


def _print_overload(result) -> None:
    report = getattr(result, "overload", None)
    if report is None:
        return
    slo = "none" if report.max_lag_ms is None else f"{report.max_lag_ms:g}ms"
    print(
        f"overload [slo {slo}, shed {report.shed_mode}]: "
        f"epochs={report.epochs} pressured={report.pressured_epochs} "
        f"slo_violations={report.slo_violations} "
        f"peak_rung={report.peak_rung} p99_lag_ms={report.p99_lag_ms():.2f}"
    )
    if report.offered:
        print(
            f"  shed {report.shed}/{report.offered} offered tuples "
            f"({report.accuracy_loss():.1%} accuracy loss), "
            f"{report.protected} protected"
        )
    if report.throttled_epochs:
        print(
            f"  throttled {report.throttled_epochs} epochs "
            f"({report.tokens_denied} admissions deferred), "
            f"replans_requested={report.replans_requested}"
        )
    for event in report.timeline:
        print(
            f"  epoch {event['epoch']}: {event['kind']} -> "
            f"{event['rung']} ({event['reason']})"
        )


def _print_recovery(recovery) -> None:
    if recovery is None:
        return
    print(
        f"recovery [{recovery.policy}]: attempts={recovery.attempts} "
        f"restarts={recovery.restarts} replans={recovery.replans} "
        f"duplicate_deliveries={recovery.duplicate_deliveries} "
        f"completed={recovery.completed}"
    )
    for event in recovery.events:
        line = f"  t+{event.elapsed_s:8.3f}s  attempt {event.attempt}: {event.kind}"
        if event.error:
            line += f" ({event.error})"
        if event.detail:
            line += f" — {event.detail}"
        print(line)


def cmd_run(args: argparse.Namespace) -> int:
    """Execute an application on the functional engine, fully instrumented."""
    topology, profiles = load_application(args.app)
    registry = MetricsRegistry()
    try:
        topology = _shifted_topology(args, topology)
        fault_plan = (
            FaultPlan.from_cli(args.inject_faults) if args.inject_faults else None
        )
        degrade = None
        if args.recovery_policy == "degrade":
            machine = _SERVERS[args.server](args.sockets)
            degrade = DegradeContext(profiles=profiles, machine=machine)
        engine_kwargs = dict(
            batch_size=args.batch_size,
            registry=registry,
            backend=_run_backend(args),
            queue_capacity=args.queue_capacity,
            n_workers=args.workers,
            dataplane=args.dataplane,
            vectorized=args.vectorized,
            string_dict=args.string_dict,
            fault_plan=fault_plan,
            recovery_policy=args.recovery_policy,
            max_restarts=args.max_restarts,
            degrade=degrade,
            epoch_interval=args.epoch_interval,
            fuse=_run_fusion(args, profiles),
            adaptive_batch=args.adaptive_batch or None,
            overload=_overload_config(args),
        )
        if args.adapt:
            plan, controller = _adapt_setup(args, topology, profiles, registry)
            engine = LocalEngine.from_plan(
                plan.expanded_plan, reconfig=controller, **engine_kwargs
            )
        else:
            engine = LocalEngine(topology, **engine_kwargs)
        result = engine.run(args.events)
    except ExecutionError as exc:
        print(f"run failed: {type(exc).__name__}: {exc}", file=sys.stderr)
        _print_recovery(exc.recovery)
        partial = exc.partial_result
        if partial is not None:
            print(
                f"partial progress: {partial.events_ingested} events ingested, "
                f"{partial.sink_received()} tuples at sinks"
            )
        _emit(
            args,
            "engine-run",
            registry,
            meta={
                "app": args.app,
                "events": args.events,
                "batch_size": args.batch_size,
                "backend": args.backend,
                "dataplane": args.dataplane,
                "vectorized": args.vectorized,
                "string_dict": args.string_dict,
                "fuse": args.fuse,
                "adaptive_batch": bool(args.adaptive_batch),
                "topology": topology.name,
                "failed": True,
                "error": type(exc).__name__,
            },
            data=_recovery_data(
                exc.recovery,
                partial.fault_summary if partial is not None else None,
            ),
        )
        return 1
    rows = []
    for name in topology.topological_order():
        rows.append(
            [
                name,
                result.component_in(name),
                result.component_out(name),
                round(result.selectivity(name), 3),
                round(result.mean_tuple_bytes(name), 1),
            ]
        )
    print(
        format_table(
            ["component", "tuples in", "tuples out", "selectivity", "mean bytes"],
            rows,
            title=f"Engine run — {args.app.upper()} "
            f"({result.events_ingested} events ingested)",
        )
    )
    print(f"sink received: {result.sink_received()} tuples")
    _print_epochs(result)
    _print_reconfig(result)
    _print_overload(result)
    _print_recovery(result.recovery)
    _emit(
        args,
        "engine-run",
        registry,
        meta={
            "app": args.app,
            "events": args.events,
            "batch_size": args.batch_size,
            "backend": args.backend,
            "dataplane": args.dataplane,
            "vectorized": args.vectorized,
            "string_dict": args.string_dict,
            "fuse": args.fuse,
            "adaptive_batch": bool(args.adaptive_batch),
            "topology": topology.name,
            "epoch_interval": args.epoch_interval,
            "adapt": bool(args.adapt),
            "max_lag_ms": args.max_lag_ms,
            "shed": args.shed,
        },
        data=_run_data(result),
    )
    return 0


def cmd_optimize(args: argparse.Namespace) -> int:
    registry = _registry(args)
    _optimize(args, registry)
    _emit(
        args,
        "optimize",
        registry,
        meta={"app": args.app, "server": args.server, "sockets": args.sockets},
    )
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    registry = _registry(args)
    plan, rate, profiles, machine = _optimize(args, registry)
    flow = FlowSimulator(profiles, machine).simulate(plan.expanded_plan, rate)
    print(f"\nmeasured throughput: {flow.throughput:,.0f} events/s")
    if args.latency:
        des = DiscreteEventSimulator(profiles, machine, seed=1, registry=registry)
        events_out = flow.throughput / max(rate, 1.0)
        result = des.run(
            plan.expanded_plan, flow.throughput / max(events_out, 1e-9), max_events=4000
        )
        print(
            f"latency: p50={result.latency.percentile(50) / 1e6:.2f} ms  "
            f"p99={result.latency.p99_ms():.2f} ms"
        )
    _emit(
        args,
        "simulate",
        registry,
        meta={
            "app": args.app,
            "server": args.server,
            "sockets": args.sockets,
            "latency": bool(args.latency),
        },
    )
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    topology, profiles = load_application(args.app)
    rows = []
    for name in topology.topological_order():
        p = profiles[name]
        rows.append(
            [
                name,
                round(p.te_cycles),
                round(p.total_selectivity, 3),
                round(p.stream_bytes() or max(p.output_bytes.values(), default=0)),
                round(p.memory_bytes),
            ]
        )
    print(
        format_table(
            ["operator", "Te (cycles)", "selectivity", "out bytes", "M (bytes)"],
            rows,
            title=f"Calibrated profiles — {args.app.upper()}",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="BriskStream reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("machines", help="list machine models").set_defaults(
        handler=cmd_machines
    )

    run = sub.add_parser(
        "run", help="execute an app on the functional engine with metrics"
    )
    run.add_argument("app", choices=APP_NAMES, help="application to run")
    run.add_argument("--events", type=int, default=2000, help="events per spout")
    run.add_argument("--batch-size", type=int, default=64)
    run.add_argument(
        "--backend",
        choices=("inline", "process"),
        default="inline",
        help="executor backend (see docs/runtime.md)",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --backend process",
    )
    run.add_argument(
        "--dataplane",
        choices=DATAPLANE_NAMES,
        default="pickle",
        help=(
            "remote-batch transport for --backend process: pickle "
            "(control-queue payloads) or shm (shared-memory rings + "
            "binary codec; see docs/dataplane.md)"
        ),
    )
    run.add_argument(
        "--vectorized",
        choices=VECTORIZED_MODES,
        default="auto",
        help=(
            "columnar kernel dispatch: auto (use numpy kernels when "
            "operator and schema qualify), on (require numpy) or off "
            "(scalar dispatch only; see docs/vectorized.md)"
        ),
    )
    run.add_argument(
        "--string-dict",
        choices=STRING_DICT_MODES,
        default="auto",
        help=(
            "adaptive string-dictionary encoding on the shm data plane: "
            "auto (per-edge columns promote to int32 codes once observed "
            "repetition warrants it), on (promote every string column "
            "immediately) or off (raw strings on the wire; see "
            "docs/dataplane.md)"
        ),
    )
    run.add_argument(
        "--fuse",
        choices=FUSE_MODES,
        default="auto",
        help=(
            "runtime operator-chain fusion: auto (fuse profitable "
            "same-socket 1:1 edges), on (require fusion; fail if an "
            "eligible edge crosses sockets) or off (run the spec as "
            "lowered; see docs/fusion.md)"
        ),
    )
    run.add_argument(
        "--adaptive-batch",
        action="store_true",
        help=(
            "size each edge's jumbo batches with a per-edge AIMD "
            "controller stepped at epoch barriers (requires "
            "--epoch-interval; see docs/fusion.md)"
        ),
    )
    run.add_argument(
        "--queue-capacity",
        type=int,
        default=None,
        help="bound every communication queue to N tuples (backpressure)",
    )
    run.add_argument(
        "--epoch-interval",
        type=int,
        default=None,
        metavar="N",
        help=(
            "commit a consistent state checkpoint every N events per "
            "spout replica (epoch barriers; see docs/reconfiguration.md)"
        ),
    )
    run.add_argument(
        "--adapt",
        action="store_true",
        help=(
            "watch epoch commits for workload drift and migrate the "
            "placement live (requires --epoch-interval)"
        ),
    )
    run.add_argument(
        "--replace-threshold",
        type=float,
        default=0.10,
        metavar="D",
        help="drift magnitude triggering a placement-only replan (--adapt)",
    )
    run.add_argument(
        "--reoptimize-threshold",
        type=float,
        default=0.35,
        metavar="D",
        help="drift magnitude triggering a full re-optimization (--adapt)",
    )
    run.add_argument(
        "--rate",
        type=float,
        default=None,
        help="ingress rate (events/s) --adapt plans for; default saturation",
    )
    run.add_argument(
        "--shift-at",
        type=int,
        default=None,
        metavar="N",
        help="WC only: shift sentence length after N sentences per spout",
    )
    run.add_argument(
        "--shift-words",
        type=int,
        default=None,
        metavar="W",
        help="WC only: words per sentence after the shift point",
    )
    run.add_argument(
        "--max-lag-ms",
        type=float,
        default=None,
        metavar="MS",
        help=(
            "end-to-end tuple-lag SLO in milliseconds; arms overload "
            "control (requires --epoch-interval; see docs/overload.md)"
        ),
    )
    run.add_argument(
        "--shed",
        choices=SHED_MODES,
        default="off",
        help=(
            "graceful load shedding under overload: off (never drop), "
            "random (seeded deterministic sampling) or semantic (only "
            "tuples the spout's sheddable() predicate blesses; see "
            "docs/overload.md)"
        ),
    )
    run.add_argument(
        "--shed-rate",
        type=float,
        default=0.5,
        metavar="F",
        help="fraction of eligible tuples dropped while shedding is active",
    )
    run.add_argument(
        "--shed-seed",
        type=int,
        default=1,
        help="seed for the deterministic shedding hash",
    )
    run.add_argument(
        "--inject-faults",
        metavar="SPEC",
        default=None,
        help=(
            "deterministic chaos: key=value pairs, e.g. "
            "'seed=7,kinds=crash|stall,n=2,at=100' (see docs/robustness.md)"
        ),
    )
    run.add_argument(
        "--recovery-policy",
        choices=RECOVERY_POLICIES,
        default=None,
        help="supervise the run: fail-fast, retry or degrade",
    )
    run.add_argument(
        "--max-restarts",
        type=int,
        default=3,
        help="restart bound for retry/degrade recovery",
    )
    run.add_argument(
        "--watchdog-timeout",
        type=float,
        default=None,
        metavar="S",
        help="heartbeat watchdog timeout for --backend process (seconds)",
    )
    run.add_argument(
        "--server",
        choices=("A", "B"),
        default="A",
        help="machine model the degrade policy replans against",
    )
    run.add_argument(
        "--sockets",
        type=int,
        default=4,
        help="socket count of the degrade machine model",
    )
    run.add_argument(
        "--emit-metrics",
        metavar="PATH",
        default=None,
        help="write a JSON run report (see docs/metrics.md)",
    )
    run.set_defaults(handler=cmd_run)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--app", choices=APP_NAMES, default="wc")
        p.add_argument("--server", choices=("A", "B"), default="A")
        p.add_argument("--sockets", type=int, default=8)
        p.add_argument("--rate", type=float, default=None, help="ingress (events/s)")
        p.add_argument(
            "--tf-mode",
            choices=[m.value for m in TfMode],
            default="relative",
            help="relative (RLAS) / worst (fix L) / zero (fix U)",
        )
        p.add_argument("--compress-ratio", type=int, default=5)
        p.add_argument(
            "--opt-workers",
            type=int,
            default=1,
            help="parallel B&B search processes (1 = deterministic sequential)",
        )
        p.add_argument(
            "--emit-metrics",
            metavar="PATH",
            default=None,
            help="write a JSON run report (see docs/metrics.md)",
        )

    opt = sub.add_parser("optimize", help="run RLAS and print the plan")
    common(opt)
    opt.set_defaults(handler=cmd_optimize)

    sim = sub.add_parser("simulate", help="optimize then measure the plan")
    common(sim)
    sim.add_argument("--latency", action="store_true", help="also run the DES")
    sim.set_defaults(handler=cmd_simulate)

    prof = sub.add_parser("profile", help="print an app's calibrated profiles")
    prof.add_argument("--app", choices=APP_NAMES, default="wc")
    prof.set_defaults(handler=cmd_profile)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
