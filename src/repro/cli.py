"""Command-line interface: optimize, simulate and inspect from a shell.

Examples::

    python -m repro machines
    python -m repro optimize --app wc --server A --sockets 8
    python -m repro simulate --app lr --server B --latency
    python -m repro profile --app sd
"""

from __future__ import annotations

import argparse
import sys

from repro.apps import APP_NAMES, load_application
from repro.core import PerformanceModel, RLASOptimizer, TfMode
from repro.core.scaling import saturation_ingress
from repro.hardware import server_a, server_b
from repro.metrics import format_table
from repro.simulation import DiscreteEventSimulator, FlowSimulator

_SERVERS = {"A": server_a, "B": server_b}


def _machine(args: argparse.Namespace):
    return _SERVERS[args.server](args.sockets)


def _optimize(args: argparse.Namespace):
    topology, profiles = load_application(args.app)
    machine = _machine(args)
    model = PerformanceModel(profiles, machine)
    rate = args.rate or saturation_ingress(topology, model)
    plan = RLASOptimizer(
        topology,
        profiles,
        machine,
        rate,
        tf_mode=TfMode(args.tf_mode),
        compress_ratio=args.compress_ratio,
    ).optimize()
    print(plan.describe())
    return plan, rate, profiles, machine


def cmd_machines(args: argparse.Namespace) -> int:
    rows = []
    for name, factory in _SERVERS.items():
        d = factory().describe()
        rows.append(
            [
                name,
                d["processor"],
                d["one_hop_latency_ns"],
                d["max_hops_latency_ns"],
                d["total_local_bandwidth_gb_s"],
            ]
        )
    print(
        format_table(
            ["server", "processor", "1-hop ns", "max-hop ns", "total B/W GB/s"],
            rows,
            title="Available machine models (Table 2)",
        )
    )
    return 0


def cmd_optimize(args: argparse.Namespace) -> int:
    _optimize(args)
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    plan, rate, profiles, machine = _optimize(args)
    flow = FlowSimulator(profiles, machine).simulate(plan.expanded_plan, rate)
    print(f"\nmeasured throughput: {flow.throughput:,.0f} events/s")
    if args.latency:
        des = DiscreteEventSimulator(profiles, machine, seed=1)
        events_out = flow.throughput / max(rate, 1.0)
        result = des.run(
            plan.expanded_plan, flow.throughput / max(events_out, 1e-9), max_events=4000
        )
        print(
            f"latency: p50={result.latency.percentile(50) / 1e6:.2f} ms  "
            f"p99={result.latency.p99_ms():.2f} ms"
        )
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    topology, profiles = load_application(args.app)
    rows = []
    for name in topology.topological_order():
        p = profiles[name]
        rows.append(
            [
                name,
                round(p.te_cycles),
                round(p.total_selectivity, 3),
                round(p.stream_bytes() or max(p.output_bytes.values(), default=0)),
                round(p.memory_bytes),
            ]
        )
    print(
        format_table(
            ["operator", "Te (cycles)", "selectivity", "out bytes", "M (bytes)"],
            rows,
            title=f"Calibrated profiles — {args.app.upper()}",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="BriskStream reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("machines", help="list machine models").set_defaults(
        handler=cmd_machines
    )

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--app", choices=APP_NAMES, default="wc")
        p.add_argument("--server", choices=("A", "B"), default="A")
        p.add_argument("--sockets", type=int, default=8)
        p.add_argument("--rate", type=float, default=None, help="ingress (events/s)")
        p.add_argument(
            "--tf-mode",
            choices=[m.value for m in TfMode],
            default="relative",
            help="relative (RLAS) / worst (fix L) / zero (fix U)",
        )
        p.add_argument("--compress-ratio", type=int, default=5)

    opt = sub.add_parser("optimize", help="run RLAS and print the plan")
    common(opt)
    opt.set_defaults(handler=cmd_optimize)

    sim = sub.add_parser("simulate", help="optimize then measure the plan")
    common(sim)
    sim.add_argument("--latency", action="store_true", help="also run the DES")
    sim.set_defaults(handler=cmd_simulate)

    prof = sub.add_parser("profile", help="print an app's calibrated profiles")
    prof.add_argument("--app", choices=APP_NAMES, default="wc")
    prof.set_defaults(handler=cmd_profile)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
