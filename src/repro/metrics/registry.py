"""Structured runtime metrics: counters, gauges and streaming histograms.

The registry is the statistics feed every other subsystem reports into —
the engine's per-task tuple counts, the DES's per-replica occupancy, the
optimizer's search statistics.  It exists so that runs become
machine-readable (see :mod:`repro.metrics.export`) instead of each harness
inventing its own result shape.

Design constraints:

* **Near-zero cost when off.**  Instrumented code takes a registry object
  and checks its ``enabled`` flag once per hot section; the default
  :data:`NULL_REGISTRY` hands out shared no-op instruments, so an
  uninstrumented run pays at most one boolean test per batch.
* **Bounded memory.**  Histograms are streaming: exact count/sum/min/max
  plus a fixed-size reservoir sample for quantiles (Vitter's Algorithm R
  with a deterministic per-instrument RNG, so runs are reproducible).
* **Flat dotted names.**  The convention is ``component.replica.metric``
  (e.g. ``engine.splitter.0.tuples_in``); the registry itself only
  requires names to be non-empty strings, and one name maps to exactly one
  instrument kind.
"""

from __future__ import annotations

import math
import zlib
from typing import Iterator

from repro.errors import MetricsError

#: Reservoir size used by default; large enough that p99 of a
#: 4096-sample reservoir tracks the true p99 closely.
DEFAULT_RESERVOIR = 4096


class Counter:
    """A monotonically increasing integer count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise MetricsError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A point-in-time float value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Streaming distribution: exact moments + reservoir-sampled quantiles.

    ``observe`` is O(1); quantiles sort the (bounded) reservoir on demand.
    With fewer observations than the reservoir size the quantiles are
    exact and match :func:`statistics.quantiles` with
    ``method="inclusive"``.
    """

    __slots__ = (
        "name",
        "count",
        "total",
        "min",
        "max",
        "_reservoir",
        "_capacity",
        "_rng_state",
    )

    def __init__(
        self, name: str, reservoir: int = DEFAULT_RESERVOIR, seed: int = 0
    ) -> None:
        if reservoir < 1:
            raise MetricsError("histogram reservoir must hold >= 1 sample")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._reservoir: list[float] = []
        self._capacity = reservoir
        # Deterministic per-instrument stream: a tiny xorshift seeded from
        # the name, so identical runs keep identical reservoirs without
        # touching the global RNG.
        self._rng_state = (zlib.crc32(name.encode()) ^ seed) or 1

    def _rand_below(self, n: int) -> int:
        x = self._rng_state
        x ^= (x << 13) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 7
        x ^= (x << 17) & 0xFFFFFFFFFFFFFFFF
        self._rng_state = x
        return x % n

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._reservoir) < self._capacity:
            self._reservoir.append(value)
        else:
            slot = self._rand_below(self.count)
            if slot < self._capacity:
                self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 1] (inclusive interpolation)."""
        if not 0.0 <= q <= 1.0:
            raise MetricsError(f"quantile {q} outside [0, 1]")
        if not self._reservoir:
            raise MetricsError(f"histogram {self.name!r} has no samples")
        data = sorted(self._reservoir)
        if len(data) == 1:
            return data[0]
        position = q * (len(data) - 1)
        low = math.floor(position)
        high = math.ceil(position)
        return data[low] + (data[high] - data[low]) * (position - low)

    def percentile(self, p: float) -> float:
        """Value at percentile ``p`` in [0, 100]."""
        return self.quantile(p / 100.0)

    def snapshot(self) -> dict[str, float]:
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Namespace of named instruments, created on first use.

    One name resolves to exactly one instrument; asking for the same name
    with a different kind is a programming error and raises.
    """

    enabled = True

    def __init__(
        self, histogram_reservoir: int = DEFAULT_RESERVOIR, seed: int = 0
    ) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._kinds: dict[str, str] = {}
        self._reservoir = histogram_reservoir
        self._seed = seed

    def _claim(self, name: str, kind: str) -> None:
        if not name:
            raise MetricsError("metric names must be non-empty")
        existing = self._kinds.get(name)
        if existing is None:
            self._kinds[name] = kind
        elif existing != kind:
            raise MetricsError(
                f"metric {name!r} already registered as a {existing}, "
                f"requested as a {kind}"
            )

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._claim(name, "counter")
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._claim(name, "gauge")
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._claim(name, "histogram")
            instrument = self._histograms[name] = Histogram(
                name, reservoir=self._reservoir, seed=self._seed
            )
        return instrument

    def names(self) -> Iterator[str]:
        yield from sorted(self._kinds)

    def __len__(self) -> int:
        return len(self._kinds)

    def snapshot(self) -> dict[str, dict]:
        """Point-in-time dump of every instrument (the exporter's input)."""
        return {
            "counters": {
                name: c.snapshot() for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.snapshot() for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.snapshot() for name, h in sorted(self._histograms.items())
            },
        }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """The do-nothing registry injected by default.

    Hands out shared no-op instruments so instrumented code needs no
    ``if registry`` branches of its own, and reports ``enabled = False``
    so hot loops can skip instrumentation wholesale.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str) -> Histogram:
        return self._null_histogram

    def snapshot(self) -> dict[str, dict]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: Shared default instance: uninstrumented callers all use this one.
NULL_REGISTRY = NullRegistry()
