"""Versioned JSON run reports: the machine-readable side of every run.

A *run report* is one JSON document describing one run — an engine
execution, an optimizer invocation, a simulation, or one benchmark
artefact.  The schema (documented in ``docs/metrics.md``) is deliberately
small and stable:

``schema_version``
    Integer; readers reject documents newer than they understand.
``kind`` / ``name``
    What produced the report (``engine-run``, ``optimize``, ``simulate``,
    ``benchmark``...) and which app/artefact it describes.
``meta``
    Free-form provenance (app, server, git sha, timestamp...).
``metrics``
    A :meth:`~repro.metrics.registry.MetricsRegistry.snapshot`:
    ``counters`` / ``gauges`` / ``histograms`` keyed by dotted names.
``data``
    Free-form structured payload (benchmark rows, derived series).

:func:`write_report` and :func:`load_report` round-trip the document;
benchmarks and the CLI's ``--emit-metrics`` flag both go through them.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import MetricsError
from repro.metrics.registry import MetricsRegistry

#: Bump when the report layout changes incompatibly.
SCHEMA_VERSION = 1

_REQUIRED_KEYS = ("schema_version", "kind", "name", "meta", "metrics", "data")
_METRIC_SECTIONS = ("counters", "gauges", "histograms")


@dataclass
class RunReport:
    """One machine-readable run description."""

    kind: str
    name: str
    meta: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    data: dict = field(default_factory=dict)
    generated_unix: float = 0.0
    schema_version: int = SCHEMA_VERSION

    def counters(self) -> dict[str, int]:
        return self.metrics.get("counters", {})

    def gauges(self) -> dict[str, float]:
        return self.metrics.get("gauges", {})

    def histograms(self) -> dict[str, dict]:
        return self.metrics.get("histograms", {})

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "name": self.name,
            "generated_unix": self.generated_unix,
            "meta": self.meta,
            "metrics": self.metrics,
            "data": self.data,
        }


def build_report(
    kind: str,
    name: str,
    registry: MetricsRegistry | None = None,
    meta: dict | None = None,
    data: dict | None = None,
) -> RunReport:
    """Assemble a report from a registry snapshot plus free-form payloads."""
    metrics = (
        registry.snapshot()
        if registry is not None
        else {section: {} for section in _METRIC_SECTIONS}
    )
    return RunReport(
        kind=kind,
        name=name,
        meta=dict(meta or {}),
        metrics=metrics,
        data=dict(data or {}),
        generated_unix=time.time(),
    )


def write_report(path: str | Path, report: RunReport) -> Path:
    """Serialize ``report`` to ``path`` (parent directories are created)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n")
    return target


def report_from_dict(raw: dict) -> RunReport:
    """Validate and rebuild a report from its JSON dictionary form."""
    missing = [key for key in _REQUIRED_KEYS if key not in raw]
    if missing:
        raise MetricsError(f"run report missing keys: {', '.join(missing)}")
    version = raw["schema_version"]
    if not isinstance(version, int) or version < 1:
        raise MetricsError(f"invalid run-report schema version: {version!r}")
    if version > SCHEMA_VERSION:
        raise MetricsError(
            f"run report has schema version {version}, "
            f"this reader understands <= {SCHEMA_VERSION}"
        )
    metrics = raw["metrics"]
    if not isinstance(metrics, dict) or any(
        section not in metrics for section in _METRIC_SECTIONS
    ):
        raise MetricsError(
            "run-report metrics must contain counters/gauges/histograms"
        )
    return RunReport(
        kind=raw["kind"],
        name=raw["name"],
        meta=raw["meta"],
        metrics=metrics,
        data=raw["data"],
        generated_unix=float(raw.get("generated_unix", 0.0)),
        schema_version=version,
    )


def load_report(path: str | Path) -> RunReport:
    """Load and validate a report previously written by :func:`write_report`."""
    source = Path(path)
    try:
        raw = json.loads(source.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise MetricsError(f"cannot read run report {source}: {exc}") from exc
    if not isinstance(raw, dict):
        raise MetricsError(f"run report {source} is not a JSON object")
    return report_from_dict(raw)
