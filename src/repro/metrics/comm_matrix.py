"""Communication pattern matrices (Figure 15).

Each cell ``(i, j)`` aggregates the data-fetch cost (``Tf``) — and, as a
secondary view, the raw bytes — of all operators on socket ``j`` fetching
from producers on socket ``i`` under a given plan.  On the glue-less
Server A the traffic concentrates out of the producer-heavy socket; on the
XNC-assisted Server B it spreads nearly uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import ModelResult, PerformanceModel
from repro.core.plan import ExecutionPlan
from repro.errors import SimulationError


@dataclass(frozen=True)
class CommunicationMatrix:
    """Socket-to-socket communication aggregates under one plan."""

    machine: str
    fetch_ns_per_s: np.ndarray
    bytes_per_s: np.ndarray

    @property
    def n_sockets(self) -> int:
        return self.fetch_ns_per_s.shape[0]

    def total_fetch_cost(self) -> float:
        """Aggregate cross-socket fetch time (ns of fetch work per second)."""
        return float(self.fetch_ns_per_s.sum())

    def hottest_source(self) -> int:
        """Socket emitting the most fetch-cost traffic (row argmax)."""
        return int(self.fetch_ns_per_s.sum(axis=1).argmax())

    def concentration(self) -> float:
        """Fraction of total fetch cost leaving the hottest source socket.

        Near 1.0 on Server A style plans (one producer-heavy socket);
        closer to ``1/n`` when traffic spreads uniformly (Server B).
        """
        total = self.total_fetch_cost()
        if total <= 0:
            return 0.0
        return float(self.fetch_ns_per_s.sum(axis=1).max() / total)

    def format_table(self) -> str:
        """Render the Tf matrix like Figure 15's heat map, as text."""
        n = self.n_sockets
        header = "from\\to " + "".join(f"{j:>11d}" for j in range(n))
        rows = [f"Tf matrix (ns/s) - {self.machine}", header]
        for i in range(n):
            cells = "".join(f"{self.fetch_ns_per_s[i, j]:>11.3g}" for j in range(n))
            rows.append(f"S{i:<6d} {cells}")
        return "\n".join(rows)


def communication_matrix(
    plan: ExecutionPlan,
    model: PerformanceModel,
    ingress_rate: float,
    result: ModelResult | None = None,
) -> CommunicationMatrix:
    """Build Figure 15's matrix for a complete plan.

    ``result`` may be supplied to reuse an existing evaluation; it must
    have been produced with ``collect_flows=True``.
    """
    if not plan.is_complete:
        raise SimulationError("communication matrix needs a complete plan")
    if result is None or not result.flows:
        result = model.evaluate(plan, ingress_rate, collect_flows=True)
    n = model.machine.n_sockets
    fetch = np.zeros((n, n))
    volume = np.zeros((n, n))
    for flow in result.flows:
        if flow.crosses_sockets:
            fetch[flow.producer_socket, flow.consumer_socket] += (
                flow.tuple_rate * flow.fetch_ns_per_tuple
            )
            volume[flow.producer_socket, flow.consumer_socket] += (
                flow.bytes_per_second
            )
    return CommunicationMatrix(
        machine=model.machine.name, fetch_ns_per_s=fetch, bytes_per_s=volume
    )
