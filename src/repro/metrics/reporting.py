"""Plain-text tables and series matching the paper's reporting formats.

The benchmark harness prints the same rows/series as each paper artefact;
these helpers keep the formatting consistent and readable in a terminal.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Align ``rows`` under ``headers``; floats get thousands separators."""
    rendered: list[list[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_series(
    name: str, points: Sequence[tuple[object, float]], unit: str = ""
) -> str:
    """One figure series as ``name: x=y`` pairs."""
    body = "  ".join(f"{x}={y:,.1f}" for x, y in points)
    suffix = f" ({unit})" if unit else ""
    return f"{name}{suffix}: {body}"


def relative_error(measured: float, estimated: float) -> float:
    """The paper's relative error: ``|measured - estimated| / measured``.

    Two exact zeros agree perfectly (error 0); a zero measurement with a
    non-zero estimate is infinitely wrong.
    """
    if measured == 0:
        return 0.0 if estimated == 0 else float("inf")
    return abs(measured - estimated) / abs(measured)


def speedup(numerator: float, denominator: float) -> float:
    """Throughput ratio guarded against division by zero."""
    if denominator <= 0:
        return float("inf")
    return numerator / denominator
