"""Metrics and reporting: runtime observability plus the paper's tables.

Three layers:

* :mod:`repro.metrics.registry` — structured runtime metrics (counters,
  gauges, streaming histograms) that the engine, simulators and optimizer
  report into;
* :mod:`repro.metrics.export` — the versioned JSON run-report format that
  makes whole runs machine-readable;
* :mod:`repro.metrics.reporting` / :mod:`repro.metrics.comm_matrix` —
  the human-readable tables and series the paper's figures plot.
"""

from repro.metrics.export import (
    SCHEMA_VERSION,
    RunReport,
    build_report,
    load_report,
    write_report,
)
from repro.metrics.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.metrics.reporting import (
    format_series,
    format_table,
    relative_error,
    speedup,
)

_LAZY = {"CommunicationMatrix", "communication_matrix"}


def __getattr__(name: str):
    # comm_matrix pulls in the performance model, whose import chain leads
    # back through the engine to the registry; loading it lazily keeps
    # `repro.metrics.registry` importable from those low-level modules.
    if name in _LAZY:
        from repro.metrics import comm_matrix

        return getattr(comm_matrix, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "CommunicationMatrix",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "RunReport",
    "SCHEMA_VERSION",
    "build_report",
    "communication_matrix",
    "format_series",
    "format_table",
    "load_report",
    "relative_error",
    "speedup",
    "write_report",
]
