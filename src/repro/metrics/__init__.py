"""Metrics and reporting: the numbers the paper's figures/tables plot."""

from repro.metrics.comm_matrix import CommunicationMatrix, communication_matrix
from repro.metrics.reporting import (
    format_series,
    format_table,
    relative_error,
    speedup,
)

__all__ = [
    "CommunicationMatrix",
    "communication_matrix",
    "format_series",
    "format_table",
    "relative_error",
    "speedup",
]
