"""Integration tests for the RLAS facade (on the small test machine)."""

import pytest

from repro.core import (
    PerformanceModel,
    RLASOptimizer,
    TfMode,
    rlas_fix_lower,
    rlas_fix_upper,
)
from repro.core.scaling import saturation_ingress

from tests.conftest import build_pipeline, pipeline_profiles


@pytest.fixture(scope="module")
def optimized(tiny_machine_module):
    topology = build_pipeline()
    profiles = pipeline_profiles(topology)
    machine = tiny_machine_module
    rate = saturation_ingress(topology, PerformanceModel(profiles, machine))
    plan = RLASOptimizer(
        topology, profiles, machine, rate, compress_ratio=2
    ).optimize()
    return topology, profiles, machine, rate, plan


@pytest.fixture(scope="session")
def tiny_machine_module():
    from repro.hardware import GB, MachineSpec, glueless_two_tray

    return MachineSpec(
        name="tiny (4x4)",
        topology=glueless_two_tray(4),
        cores_per_socket=4,
        freq_ghz=2.0,
        local_latency_ns=50.0,
        hop_latency_ns={1: 200.0, 2: 400.0},
        local_bandwidth=20.0 * GB,
        hop_bandwidth={1: 8.0 * GB, 2: 4.0 * GB},
    )


class TestOptimizedPlan:
    def test_plan_is_complete_and_valid(self, optimized):
        topology, profiles, machine, rate, plan = optimized
        plan.expanded_plan.validate_complete(machine)
        assert plan.throughput > 0
        assert plan.realized_throughput == pytest.approx(plan.throughput)

    def test_expanded_matches_replication(self, optimized):
        _, _, _, _, plan = optimized
        assert plan.expanded_plan.graph.total_replicas == plan.total_replicas
        assert all(t.weight == 1 for t in plan.expanded_plan.graph.tasks)

    def test_beats_trivial_plan(self, optimized, tiny_machine_module):
        topology, profiles, machine, rate, plan = optimized
        from repro.core import collocated_plan
        from repro.dsps import ExecutionGraph

        model = PerformanceModel(profiles, machine)
        trivial = collocated_plan(
            ExecutionGraph(topology, {n: 1 for n in topology.components})
        )
        assert plan.throughput > model.evaluate(trivial, rate).throughput

    def test_describe_is_readable(self, optimized):
        _, _, _, _, plan = optimized
        text = plan.describe()
        assert "replication" in text
        assert "throughput" in text


class TestFixedModes:
    def test_fix_modes_plan_and_realize(self, tiny_machine_module):
        topology = build_pipeline()
        profiles = pipeline_profiles(topology)
        machine = tiny_machine_module
        rate = saturation_ingress(topology, PerformanceModel(profiles, machine))
        lower = rlas_fix_lower(
            topology, profiles, machine, rate, compress_ratio=2
        )
        upper = rlas_fix_upper(
            topology, profiles, machine, rate, compress_ratio=2
        )
        assert lower.planning_mode is TfMode.WORST
        assert upper.planning_mode is TfMode.ZERO
        # fix(L) under-estimates capacity during planning; fix(U) ignores
        # RMA; both realize under the relative model.
        assert lower.realized_throughput > 0
        assert upper.realized_throughput > 0

    def test_rlas_realizes_at_least_fix_lower(self, tiny_machine_module):
        topology = build_pipeline()
        profiles = pipeline_profiles(topology)
        machine = tiny_machine_module
        rate = saturation_ingress(topology, PerformanceModel(profiles, machine))
        rlas = RLASOptimizer(
            topology, profiles, machine, rate, compress_ratio=2
        ).optimize()
        lower = rlas_fix_lower(topology, profiles, machine, rate, compress_ratio=2)
        assert rlas.realized_throughput >= lower.realized_throughput * 0.9
