"""Unit tests for groupings (partitioning strategies)."""

from collections import Counter

import pytest

from repro.dsps import (
    BroadcastGrouping,
    FieldsGrouping,
    GlobalGrouping,
    ShuffleGrouping,
    StreamEdge,
    StreamTuple,
)
from repro.errors import TopologyError


def _tuple(*values):
    return StreamTuple(values=values)


class TestShuffle:
    def test_round_robin(self):
        grouping = ShuffleGrouping()
        targets = [grouping.route(_tuple(i), 3, i)[0] for i in range(9)]
        assert targets == [0, 1, 2, 0, 1, 2, 0, 1, 2]

    def test_rate_share_uniform(self):
        grouping = ShuffleGrouping()
        assert grouping.rate_share(0, 4) == pytest.approx(0.25)
        assert grouping.fan_out(4) == 1.0

    def test_rate_share_rejects_zero_consumers(self):
        with pytest.raises(TopologyError):
            ShuffleGrouping().rate_share(0, 0)


class TestFields:
    def test_same_key_same_replica(self):
        grouping = FieldsGrouping(0)
        a = grouping.route(_tuple("word", 1), 5, 0)
        b = grouping.route(_tuple("word", 99), 5, 17)
        assert a == b

    def test_different_keys_spread(self):
        grouping = FieldsGrouping(0)
        targets = Counter(
            grouping.route(_tuple(f"w{i}"), 4, 0)[0] for i in range(400)
        )
        assert len(targets) == 4
        assert min(targets.values()) > 50  # roughly uniform

    def test_composite_key(self):
        grouping = FieldsGrouping(0, 2)
        a = grouping.route(_tuple("x", 1, "y"), 7, 0)
        b = grouping.route(_tuple("x", 2, "y"), 7, 0)
        assert a == b

    def test_missing_field_raises(self):
        with pytest.raises(TopologyError):
            FieldsGrouping(3).route(_tuple("only"), 2, 0)

    def test_needs_at_least_one_field(self):
        with pytest.raises(TopologyError):
            FieldsGrouping()


class TestBroadcast:
    def test_all_replicas_receive(self):
        grouping = BroadcastGrouping()
        assert grouping.route(_tuple(1), 4, 0) == [0, 1, 2, 3]

    def test_fan_out_and_share(self):
        grouping = BroadcastGrouping()
        assert grouping.fan_out(4) == 4.0
        assert grouping.rate_share(2, 4) == 1.0
        assert not grouping.unicast


class TestGlobal:
    def test_always_first_replica(self):
        grouping = GlobalGrouping()
        assert grouping.route(_tuple(1), 5, 99) == [0]

    def test_rate_share_concentrated(self):
        grouping = GlobalGrouping()
        assert grouping.rate_share(0, 5) == 1.0
        assert grouping.rate_share(3, 5) == 0.0


class TestStreamEdge:
    def test_describe(self):
        edge = StreamEdge(producer="a", consumer="b", stream="s")
        assert "a" in edge.describe()
        assert "shuffle" in edge.describe()
