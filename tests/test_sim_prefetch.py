"""Unit tests for the prefetch-overlap model."""

import pytest

from repro.simulation import DEFAULT_PREFETCH, NO_PREFETCH, PrefetchModel


class TestPrefetch:
    def test_no_prefetch_passes_through(self):
        assert NO_PREFETCH.effective_fetch_ns(1000.0, 5000.0) == 1000.0

    def test_local_fetch_stays_zero(self):
        assert DEFAULT_PREFETCH.effective_fetch_ns(0.0, 5000.0) == 0.0

    def test_measured_never_exceeds_estimate(self):
        for fetch in (10.0, 300.0, 1000.0, 5000.0):
            for te in (0.0, 100.0, 2000.0):
                assert DEFAULT_PREFETCH.effective_fetch_ns(fetch, te) <= fetch

    def test_compute_heavy_operator_hides_short_fetch(self):
        """Table 3: WC's Counter shows ~zero in-tray penalty."""
        model = PrefetchModel(overlap_fraction=0.5)
        # Counter-like: Te 549 ns, one cache line at 307.7 ns.
        assert model.effective_fetch_ns(307.7, 549.0) == pytest.approx(33.2, abs=1.0)

    def test_compute_light_operator_pays_fully(self):
        """Figure 8: WC's Parser has Te << Tf and pays for RMA."""
        model = PrefetchModel(overlap_fraction=0.5)
        exposed = model.effective_fetch_ns(1644.0, 140.0)
        assert exposed / 1644.0 > 0.95

    def test_cross_tray_remains_visible(self):
        """Counter's max-hop penalty is only partially hidden."""
        model = PrefetchModel(overlap_fraction=0.5)
        exposed = model.effective_fetch_ns(548.0, 549.0)
        assert 200 < exposed < 400

    def test_monotone_in_distance(self):
        model = DEFAULT_PREFETCH
        te = 1500.0
        costs = [model.effective_fetch_ns(f, te) for f in (300.0, 900.0, 1650.0)]
        assert costs == sorted(costs)
