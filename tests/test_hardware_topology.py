"""Unit tests for socket interconnect topologies."""

import numpy as np
import pytest

from repro.errors import HardwareError
from repro.hardware import (
    InterconnectKind,
    SocketTopology,
    glueless_two_tray,
    single_socket,
    xnc_two_tray,
)


class TestConstruction:
    def test_glueless_has_two_trays(self):
        topo = glueless_two_tray(8)
        assert topo.trays == ((0, 1, 2, 3), (4, 5, 6, 7))
        assert topo.kind is InterconnectKind.GLUELESS

    def test_xnc_has_two_trays(self):
        topo = xnc_two_tray(8)
        assert topo.kind is InterconnectKind.XNC
        assert topo.n_sockets == 8

    def test_single_socket(self):
        topo = single_socket()
        assert topo.n_sockets == 1
        assert topo.max_hops == 0

    def test_odd_socket_count_rejected(self):
        with pytest.raises(HardwareError):
            glueless_two_tray(7)

    def test_zero_sockets_rejected(self):
        with pytest.raises(HardwareError):
            SocketTopology(n_sockets=0, kind=InterconnectKind.SINGLE)

    def test_trays_must_partition_sockets(self):
        with pytest.raises(HardwareError):
            SocketTopology(
                n_sockets=4, kind=InterconnectKind.GLUELESS, trays=((0, 1), (1, 2, 3))
            )

    def test_default_tray_covers_all(self):
        topo = SocketTopology(n_sockets=3, kind=InterconnectKind.SINGLE)
        assert topo.trays == ((0, 1, 2),)


class TestHops:
    @pytest.fixture()
    def topo(self):
        return glueless_two_tray(8)

    def test_same_socket_zero_hops(self, topo):
        assert topo.hops(3, 3) == 0

    def test_same_tray_one_hop(self, topo):
        assert topo.hops(0, 3) == 1
        assert topo.hops(4, 7) == 1

    def test_cross_tray_two_hops(self, topo):
        assert topo.hops(0, 4) == 2
        assert topo.hops(3, 7) == 2

    def test_hops_symmetric(self, topo):
        for i in range(8):
            for j in range(8):
                assert topo.hops(i, j) == topo.hops(j, i)

    def test_max_hops(self, topo):
        assert topo.max_hops == 2

    def test_out_of_range_socket(self, topo):
        with pytest.raises(HardwareError):
            topo.hops(0, 8)

    def test_hop_matrix_matches_hops(self, topo):
        matrix = topo.hop_matrix()
        assert matrix.shape == (8, 8)
        assert matrix[0, 4] == 2
        assert np.all(np.diag(matrix) == 0)

    def test_sockets_at_distance(self, topo):
        assert topo.sockets_at_distance(0, 0) == [0]
        assert topo.sockets_at_distance(0, 1) == [1, 2, 3]
        assert topo.sockets_at_distance(0, 2) == [4, 5, 6, 7]

    def test_tray_of(self, topo):
        assert topo.tray_of(0) == 0
        assert topo.tray_of(5) == 1

    def test_same_tray(self, topo):
        assert topo.same_tray(1, 2)
        assert not topo.same_tray(1, 6)


class TestSubset:
    def test_subset_keeps_tray_structure(self):
        topo = glueless_two_tray(8).subset(4)
        assert topo.n_sockets == 4
        assert topo.trays == ((0, 1, 2, 3),)
        assert topo.max_hops == 1

    def test_subset_spanning_trays(self):
        topo = glueless_two_tray(8).subset(6)
        assert topo.trays == ((0, 1, 2, 3), (4, 5))
        assert topo.hops(0, 5) == 2

    def test_subset_to_one(self):
        topo = glueless_two_tray(8).subset(1)
        assert topo.n_sockets == 1
        assert topo.max_hops == 0

    def test_subset_too_large_rejected(self):
        with pytest.raises(HardwareError):
            glueless_two_tray(8).subset(9)

    def test_subset_zero_rejected(self):
        with pytest.raises(HardwareError):
            glueless_two_tray(8).subset(0)
