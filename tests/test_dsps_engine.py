"""Unit tests for the functional local engine."""

import pytest

from repro.dsps import (
    FlatMapOperator,
    IterableSpout,
    LocalEngine,
    MapOperator,
    Operator,
    Sink,
    TopologyBuilder,
)
from repro.errors import TopologyError


def _word_topology(parallelism=1):
    sentences = [("a b c",), ("a a",), ("",)] * 10
    builder = TopologyBuilder("mini-wc")
    builder.set_spout("spout", IterableSpout(sentences))
    builder.add_operator(
        "parser", MapOperator(lambda v: v if v[0] else None), parallelism
    ).shuffle_from("spout")
    builder.add_operator(
        "splitter",
        FlatMapOperator(lambda v: [(w,) for w in v[0].split()]),
        parallelism,
    ).shuffle_from("parser")
    builder.add_sink("sink", Sink(keep_samples=1000), parallelism).fields_from(
        "splitter", 0
    )
    return builder.build()


class TestRun:
    def test_counts_flow_through(self):
        result = LocalEngine(_word_topology()).run(30)
        # 30 sentences, 10 empty dropped, 20 valid with 3+2 words alternating.
        assert result.events_ingested == 30
        assert result.component_in("parser") == 30
        assert result.component_out("parser") == 20
        assert result.component_out("splitter") == 10 * 3 + 10 * 2
        assert result.sink_received() == 50

    def test_selectivity_measurement(self):
        result = LocalEngine(_word_topology()).run(30)
        assert result.selectivity("parser") == pytest.approx(20 / 30)
        assert result.selectivity("splitter") == pytest.approx(50 / 20)

    def test_replicated_run_same_totals(self):
        result = LocalEngine(_word_topology(parallelism=3)).run(30)
        assert result.component_in("parser") == 30
        assert result.sink_received() == 50

    def test_fields_grouping_consistency(self):
        """The same word must always land on the same sink replica."""
        topology = _word_topology(parallelism=4)
        result = LocalEngine(topology).run(30)
        seen: dict[str, int] = {}
        for replica_index, sink in enumerate(result.sinks["sink"]):
            for sample in sink.samples:
                word = sample.values[0]
                assert seen.setdefault(word, replica_index) == replica_index

    def test_replica_state_is_private(self):
        class Tally(Operator):
            def __init__(self):
                self.seen = 0

            def process(self, item):
                self.seen += 1
                yield "default", item.values

        builder = TopologyBuilder("private")
        builder.set_spout("s", IterableSpout([(i,) for i in range(10)]))
        builder.add_operator("t", Tally(), 2).shuffle_from("s")
        builder.add_sink("z", Sink()).shuffle_from("t")
        engine = LocalEngine(builder.build())
        result = engine.run(10)
        assert result.sink_received() == 10
        # Template instance must remain untouched (clones did the work).
        assert engine.topology.component("t").template.seen == 0

    def test_mean_tuple_bytes_positive(self):
        result = LocalEngine(_word_topology()).run(10)
        assert result.mean_tuple_bytes("splitter") > 0
        assert result.mean_tuple_bytes("sink") == 0.0

    def test_zero_events(self):
        result = LocalEngine(_word_topology()).run(0)
        assert result.sink_received() == 0

    def test_negative_events_rejected(self):
        with pytest.raises(TopologyError):
            LocalEngine(_word_topology()).run(-1)

    def test_flush_emissions_are_routed(self):
        class Batcher(Operator):
            def __init__(self):
                self.held = []

            def process(self, item):
                self.held.append(item.values)
                return ()

            def flush(self):
                yield "default", (len(self.held),)

        builder = TopologyBuilder("flush")
        builder.set_spout("s", IterableSpout([(i,) for i in range(7)]))
        builder.add_operator("b", Batcher()).shuffle_from("s")
        builder.add_sink("z", Sink(keep_samples=10)).shuffle_from("b")
        result = LocalEngine(builder.build()).run(7)
        assert result.sink_received() == 1
        assert result.sinks["z"][0].samples[0].values == (7,)

    def test_default_replication_uses_hints(self):
        builder = TopologyBuilder("hints")
        builder.set_spout("s", IterableSpout([(1,)]), parallelism=2)
        builder.add_sink("z", Sink(), parallelism=3).shuffle_from("s")
        engine = LocalEngine(builder.build())
        assert len(engine.graph.tasks_of("s")) == 2
        assert len(engine.graph.tasks_of("z")) == 3

    def test_event_time_preserved_to_sink(self):
        topology = _word_topology()
        result = LocalEngine(topology).run(5)
        sink = result.sinks["sink"][0]
        assert all(s.event_time_ns >= 0 for s in sink.samples)
