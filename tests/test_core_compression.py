"""Unit tests for graph compression and plan expansion (heuristic 3)."""

import pytest

from repro.core import (
    PerformanceModel,
    collocated_plan,
    compress_graph,
    compression_summary,
    expand_plan,
)
from repro.core.plan import ExecutionPlan, empty_plan
from repro.dsps import ExecutionGraph
from repro.errors import PlanError

from tests.conftest import build_pipeline, pipeline_profiles


@pytest.fixture()
def topology():
    return build_pipeline()


class TestCompressGraph:
    def test_compress_reduces_tasks(self, topology):
        graph = ExecutionGraph(
            topology, {"spout": 1, "stage": 2, "fan": 10, "sink": 2}
        )
        compressed = compress_graph(graph, 5)
        assert compressed.n_tasks < graph.n_tasks
        assert compressed.total_replicas == graph.total_replicas

    def test_ratio_one_is_identity_shape(self, topology):
        graph = ExecutionGraph(
            topology, {"spout": 1, "stage": 2, "fan": 10, "sink": 2}
        )
        same = compress_graph(graph, 1)
        assert same.n_tasks == graph.n_tasks

    def test_invalid_ratio(self, topology):
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        with pytest.raises(PlanError):
            compress_graph(graph, 0)

    def test_accepts_plan_argument(self, topology):
        graph = ExecutionGraph(topology, {n: 2 for n in topology.components})
        plan = collocated_plan(graph)
        compressed = compress_graph(plan, 2)
        assert compressed.total_replicas == graph.total_replicas


class TestExpandPlan:
    def test_expansion_preserves_socket_per_replica(self, topology):
        compressed = ExecutionGraph(
            topology, {"spout": 1, "stage": 2, "fan": 10, "sink": 2}, group_size=5
        )
        placement = {t.task_id: t.task_id % 3 for t in compressed.tasks}
        plan = ExecutionPlan(graph=compressed, placement=placement)
        expanded = expand_plan(plan)
        assert expanded.is_complete
        assert expanded.graph.n_tasks == 15
        assert all(t.weight == 1 for t in expanded.graph.tasks)
        # Every replica inherited its group's socket.
        assignment = plan.replica_assignment()
        for task in expanded.graph.tasks:
            expected = assignment[(task.component, task.replica_start)]
            assert expanded.placement[task.task_id] == expected

    def test_expansion_preserves_model_throughput(self, topology, tiny_machine):
        profiles = pipeline_profiles(topology)
        model = PerformanceModel(profiles, tiny_machine)
        compressed = ExecutionGraph(
            topology, {"spout": 1, "stage": 2, "fan": 4, "sink": 2}, group_size=2
        )
        plan = collocated_plan(compressed)
        expanded = expand_plan(plan)
        r_compressed = model.evaluate(plan, 1e7).throughput
        r_expanded = model.evaluate(expanded, 1e7).throughput
        assert r_expanded == pytest.approx(r_compressed, rel=1e-9)

    def test_incomplete_plan_rejected(self, topology):
        graph = ExecutionGraph(topology, {n: 2 for n in topology.components})
        with pytest.raises(PlanError, match="incomplete"):
            expand_plan(empty_plan(graph))


class TestSummary:
    def test_summary_fields(self, topology):
        graph = ExecutionGraph(
            topology, {"spout": 1, "stage": 2, "fan": 10, "sink": 2}, group_size=5
        )
        plan = collocated_plan(graph)
        summary = compression_summary(plan)
        assert summary["replicas"] == 15
        assert summary["max_group"] == 5
        assert summary["tasks"] == graph.n_tasks


class TestRoundTrip:
    def test_compress_place_expand_round_trip(self, topology, tiny_machine):
        """compress (r>1) -> optimize placement -> expand preserves the
        replica population and the modeled throughput."""
        from repro.core import PlacementOptimizer

        profiles = pipeline_profiles(topology)
        model = PerformanceModel(profiles, tiny_machine)
        graph = ExecutionGraph(
            topology, {"spout": 1, "stage": 2, "fan": 6, "sink": 2}
        )
        compressed = compress_graph(graph, 3)
        assert any(t.weight > 1 for t in compressed.tasks)
        placed = PlacementOptimizer(model, 1e6).optimize(compressed)
        assert placed.plan is not None
        expanded = expand_plan(placed.plan)
        assert expanded.is_complete
        assert expanded.graph.total_replicas == graph.total_replicas
        per_component = {
            name: len(expanded.graph.tasks_of(name))
            for name in topology.components
        }
        assert per_component == {"spout": 1, "stage": 2, "fan": 6, "sink": 2}
        r_compressed = model.evaluate(placed.plan, 1e6).throughput
        r_expanded = model.evaluate(expanded, 1e6).throughput
        assert r_expanded == pytest.approx(r_compressed, rel=1e-9)

    def test_round_trip_with_uneven_groups(self, topology, tiny_machine):
        """Replica counts not divisible by the ratio leave a remainder
        group whose weight the expansion must reproduce exactly."""
        profiles = pipeline_profiles(topology)
        model = PerformanceModel(profiles, tiny_machine)
        graph = ExecutionGraph(
            topology, {"spout": 1, "stage": 3, "fan": 7, "sink": 2}
        )
        compressed = compress_graph(graph, 4)
        plan = collocated_plan(compressed)
        expanded = expand_plan(plan)
        assert expanded.graph.total_replicas == 13
        assert all(t.weight == 1 for t in expanded.graph.tasks)
        assert model.evaluate(expanded, 1e6).throughput == pytest.approx(
            model.evaluate(plan, 1e6).throughput, rel=1e-9
        )
