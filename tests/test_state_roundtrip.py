"""Property suite for the operator state contract (snapshot/restore).

The round-trip law from :meth:`Operator.snapshot_state`: feed an operator
an arbitrary prefix of tuples, snapshot it, restore the snapshot into a
*fresh* replica, and the replica must be indistinguishable from the
original — the same suffix of inputs yields the same emissions and the
same next snapshot.  The law is what makes epoch checkpoints, supervisor
resume and live migration correct (docs/reconfiguration.md), so it is
checked property-style across every stateful operator of the four
applications, with the snapshot additionally forced through
``check_serializable`` and a real pickle round-trip — exactly the path a
checkpoint blob takes.
"""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.fraud_detection import FraudSink, MarkovPredictor
from repro.apps.linear_road import (
    COUNTS_STREAM,
    DETECT_STREAM,
    LAS_STREAM,
    AccidentDetector,
    AccountBalance,
    AverageSpeed,
    CountVehicles,
    LastAverageSpeed,
    LinearRoadSink,
    TollNotifier,
)
from repro.apps.spike_detection import MovingAverage, SpikeDetector, SpikeSink
from repro.apps.wordcount import Counter, Splitter, WordCountSink
from repro.core.fusion import FusedOperator
from repro.dsps import Sink
from repro.dsps.tuples import StreamTuple
from repro.runtime import check_serializable

# ---------------------------------------------------------------------------
# Input-tuple strategies, one per operator input schema
# ---------------------------------------------------------------------------

_WORDS = st.sampled_from(["the", "quick", "fox", "a", "stream"])
_DEVICES = st.sampled_from(["dev-0", "dev-1", "dev-2"])
_FLOATS = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
_STATES = st.sampled_from(["low", "mid", "high", "odd"])

word_tuples = st.builds(lambda w: StreamTuple(values=(w,)), _WORDS)
reading_tuples = st.builds(
    lambda d, v, t: StreamTuple(values=(d, v, t)),
    _DEVICES,
    _FLOATS,
    st.integers(min_value=0, max_value=10**9),
)
average_tuples = st.builds(
    lambda d, a, v: StreamTuple(values=(d, a, v)), _DEVICES, _FLOATS, _FLOATS
)
trace_tuples = st.builds(
    lambda e, states: StreamTuple(values=(e, ",".join(states))),
    st.sampled_from(["acct-1", "acct-2"]),
    st.lists(_STATES, min_size=1, max_size=6),
)
fraud_tuples = st.builds(
    lambda e, s, f: StreamTuple(values=(e, s, f)),
    st.sampled_from(["acct-1", "acct-2"]),
    _FLOATS,
    st.booleans(),
)
# LR position report: (time, vid, speed, xway, lane, dir, seg, pos).
position_tuples = st.builds(
    lambda t, vid, speed, xway, direction, seg, pos: StreamTuple(
        values=(t, vid, speed, xway, 0, direction, seg, pos)
    ),
    st.integers(min_value=0, max_value=600),
    st.integers(min_value=0, max_value=7),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=1),
    st.integers(min_value=0, max_value=1),
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=0, max_value=5),
)
# The toll notifier branches per input stream: position reports on the
# default stream plus LAV / vehicle-count / accident-detect records.
toll_input_tuples = st.one_of(
    position_tuples,
    st.builds(
        lambda stream, xway, direction, seg, v: StreamTuple(
            values=(xway, direction, seg, v), stream=stream
        ),
        st.sampled_from([LAS_STREAM, COUNTS_STREAM, DETECT_STREAM]),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=200),
    ),
)
segment_stat_tuples = st.builds(
    lambda xway, direction, seg, v: StreamTuple(
        values=(xway, direction, seg, v)
    ),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=1),
    st.integers(min_value=0, max_value=2),
    _FLOATS,
)

#: (operator factory, input strategy) for every stateful operator; the
#: factory runs per example so replicas never share state.
CASES = {
    "wc-counter": (Counter, word_tuples),
    "wc-sink": (WordCountSink, word_tuples),
    "sd-moving-average": (MovingAverage, reading_tuples),
    "sd-spike-detector": (SpikeDetector, average_tuples),
    "sd-sink": (
        lambda: SpikeSink(keep_samples=4),
        st.builds(
            lambda d, v, a, s: StreamTuple(values=(d, v, a, s)),
            _DEVICES,
            _FLOATS,
            _FLOATS,
            st.booleans(),
        ),
    ),
    "fd-markov-predictor": (MarkovPredictor, trace_tuples),
    "fd-sink": (lambda: FraudSink(keep_samples=4), fraud_tuples),
    "lr-average-speed": (lambda: AverageSpeed(window=4), position_tuples),
    "lr-last-average-speed": (LastAverageSpeed, segment_stat_tuples),
    "lr-accident-detector": (AccidentDetector, position_tuples),
    "lr-count-vehicles": (lambda: CountVehicles(minute_length=60), position_tuples),
    "lr-toll-notifier": (TollNotifier, toll_input_tuples),
    "lr-account-balance": (
        AccountBalance,
        # Balance query: (time, vid, query_id).
        st.builds(
            lambda t, vid, q: StreamTuple(values=(t, vid, q)),
            st.integers(min_value=0, max_value=600),
            st.integers(min_value=0, max_value=7),
            st.integers(min_value=0, max_value=99),
        ),
    ),
    "lr-sink": (lambda: LinearRoadSink(keep_samples=4), segment_stat_tuples),
    "base-sink": (lambda: Sink(keep_samples=4), word_tuples),
    # Fused chains delegate snapshot/restore to every constituent, so a
    # fused stateful pair must satisfy the same round-trip law (runtime
    # fusion keeps per-task snapshots; core fuse() rewrites share this).
    "fused-splitter-counter": (
        lambda: FusedOperator(Splitter(), Counter()),
        st.builds(
            lambda words: StreamTuple(values=(" ".join(words),)),
            st.lists(_WORDS, min_size=1, max_size=5),
        ),
    ),
    "fused-average-detector": (
        lambda: FusedOperator(MovingAverage(), SpikeDetector()),
        reading_tuples,
    ),
}


def _feed(operator, items):
    return [
        (stream, tuple(values))
        for item in items
        for stream, values in operator.process(item)
    ]


def _strategy(name):
    factory, tuples = CASES[name]
    return st.tuples(
        st.just(factory),
        st.lists(tuples, max_size=30),
        st.lists(tuples, max_size=15),
    )


@st.composite
def _case(draw):
    name = draw(st.sampled_from(sorted(CASES)))
    return (name, *draw(_strategy(name)))


@given(case=_case())
@settings(max_examples=200, deadline=None)
def test_snapshot_restore_round_trip(case):
    """Prefix -> snapshot -> pickle -> restore: suffix behaviour identical."""
    name, factory, prefix, suffix = case
    original = factory()
    _feed(original, prefix)
    state = original.snapshot_state()
    # The contract: plain data only, surviving the checkpoint codec.
    check_serializable(state, path=f"{name} state")
    moved = pickle.loads(pickle.dumps(state, protocol=5))

    restored = factory()
    restored.restore_state(moved)
    assert _feed(restored, suffix) == _feed(original, suffix)
    assert restored.snapshot_state() == original.snapshot_state()


@given(case=_case())
@settings(max_examples=50, deadline=None)
def test_snapshot_is_isolated_from_live_state(case):
    """A snapshot is a value: mutating the operator afterwards must not
    retroactively change it (checkpoints outlive the replica)."""
    name, factory, prefix, suffix = case
    operator = factory()
    _feed(operator, prefix)
    state = operator.snapshot_state()
    frozen = pickle.dumps(state, protocol=5)
    _feed(operator, suffix)
    assert pickle.dumps(state, protocol=5) == frozen


@given(received=st.integers(min_value=0, max_value=1000))
def test_base_sink_restore_resets_counters(received):
    sink = Sink()
    sink.restore_state({"received": received, "samples": []})
    assert sink.received == received
    assert sink.samples == []
