"""Tests for workload-drift adaptation (Section 5.3 extension)."""

import pytest

from repro.core import PerformanceModel, RLASOptimizer
from repro.core.adaptation import (
    AdaptationAction,
    AdaptiveController,
    detect_drift,
)
from repro.core.scaling import saturation_ingress
from repro.errors import PlanError

from tests.conftest import build_pipeline, pipeline_profiles


@pytest.fixture(scope="module")
def deployed(request):
    from repro.hardware import GB, MachineSpec, glueless_two_tray

    machine = MachineSpec(
        name="tiny (4x4)",
        topology=glueless_two_tray(4),
        cores_per_socket=4,
        freq_ghz=2.0,
        local_latency_ns=50.0,
        hop_latency_ns={1: 200.0, 2: 400.0},
        local_bandwidth=20.0 * GB,
        hop_bandwidth={1: 8.0 * GB, 2: 4.0 * GB},
    )
    topology = build_pipeline()
    profiles = pipeline_profiles(topology)
    rate = saturation_ingress(topology, PerformanceModel(profiles, machine))
    plan = RLASOptimizer(
        topology, profiles, machine, rate, compress_ratio=2
    ).optimize()
    return topology, profiles, machine, rate, plan


class TestDetectDrift:
    def test_no_drift_on_identical(self, deployed):
        _, profiles, _, _, _ = deployed
        reports = detect_drift(profiles, profiles)
        assert all(r.magnitude == pytest.approx(0.0) for r in reports)

    def test_te_drift_measured(self, deployed):
        _, profiles, _, _, _ = deployed
        drifted = profiles.replace("fan", te_cycles=profiles["fan"].te_cycles * 1.5)
        report = {r.component: r for r in detect_drift(profiles, drifted)}
        assert report["fan"].magnitude == pytest.approx(0.5)
        assert report["spout"].magnitude == pytest.approx(0.0)

    def test_selectivity_drift_measured(self, deployed):
        _, profiles, _, _, _ = deployed
        drifted = profiles.replace("fan", selectivity={"default": 3.0})
        report = {r.component: r for r in detect_drift(profiles, drifted)}
        assert report["fan"].selectivity_delta == pytest.approx(1.0)

    def test_mismatched_topologies_rejected(self, deployed):
        _, profiles, _, _, _ = deployed
        from repro.dsps import IterableSpout, Sink, TopologyBuilder
        from repro.core import OperatorProfile, ProfileSet

        builder = TopologyBuilder("other")
        builder.set_spout("s", IterableSpout([("x",)]))
        builder.add_sink("z", Sink()).shuffle_from("s")
        other = ProfileSet(
            builder.build(),
            {
                "s": OperatorProfile("s", 10),
                "z": OperatorProfile("z", 10),
            },
        )
        with pytest.raises(PlanError):
            detect_drift(profiles, other)


class TestController:
    def test_small_drift_does_nothing(self, deployed):
        topology, profiles, machine, rate, plan = deployed
        controller = AdaptiveController(plan, profiles, rate)
        drifted = profiles.replace("fan", te_cycles=profiles["fan"].te_cycles * 1.02)
        assert controller.observe(drifted) is AdaptationAction.NONE
        assert controller.plan is plan

    def test_moderate_drift_replaces(self, deployed):
        topology, profiles, machine, rate, plan = deployed
        controller = AdaptiveController(plan, profiles, rate)
        drifted = profiles.replace("fan", te_cycles=profiles["fan"].te_cycles * 1.2)
        action = controller.observe(drifted)
        assert action is AdaptationAction.REPLACE
        # Replication preserved, placement recomputed.
        assert controller.plan.replication == plan.replication
        assert controller.plan.realized_throughput > 0
        assert controller.profiles is drifted

    def test_large_drift_reoptimizes(self, deployed):
        topology, profiles, machine, rate, plan = deployed
        controller = AdaptiveController(plan, profiles, rate)
        drifted = profiles.replace("fan", te_cycles=profiles["fan"].te_cycles * 2.0)
        action = controller.observe(drifted)
        assert action is AdaptationAction.REOPTIMIZE
        # The fan got slower: the new plan gives it more replicas.
        assert controller.plan.replication["fan"] >= plan.replication["fan"]

    def test_history_recorded(self, deployed):
        topology, profiles, machine, rate, plan = deployed
        controller = AdaptiveController(plan, profiles, rate)
        controller.observe(profiles)
        assert controller.history == [AdaptationAction.NONE]

    def test_invalid_thresholds(self, deployed):
        topology, profiles, machine, rate, plan = deployed
        with pytest.raises(PlanError):
            AdaptiveController(
                plan, profiles, rate, replace_threshold=0.5, reoptimize_threshold=0.1
            )
