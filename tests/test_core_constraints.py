"""Unit tests for resource constraints (Equations 3-5)."""

import pytest

from repro.core import (
    ConstraintKind,
    OperatorProfile,
    PerformanceModel,
    ProfileSet,
    collocated_plan,
    empty_plan,
    is_feasible,
    resource_report,
)
from repro.dsps import ExecutionGraph

from tests.conftest import build_pipeline, pipeline_profiles


@pytest.fixture()
def setup(tiny_machine):
    topology = build_pipeline()
    profiles = pipeline_profiles(topology)
    model = PerformanceModel(profiles, tiny_machine)
    return topology, profiles, model


def _report(model, plan, rate):
    result = model.evaluate(plan, rate, bounding=True)
    return resource_report(plan, result, model.machine, model.profiles)


class TestCpuConstraint:
    def test_light_load_feasible(self, setup, tiny_machine):
        topology, profiles, model = setup
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        report = _report(model, collocated_plan(graph), 1000.0)
        assert report.is_feasible
        assert report.usage(0).cpu_utilization(tiny_machine) < 0.01

    def test_saturated_tasks_use_full_cores(self, setup, tiny_machine):
        topology, profiles, model = setup
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        report = _report(model, collocated_plan(graph), 1e12)
        # Over-supplied replicas each burn a full core (1e9 ns/s); the sink
        # stays slightly under-supplied, so the total sits below 4 cores.
        assert 3e9 < report.usage(0).cpu_ns_per_s <= 4e9 * (1 + 1e-9)

    def test_cores_constraint_violated(self, setup, tiny_machine):
        topology, profiles, model = setup
        # 6 replicas of each component on one 4-core socket.
        graph = ExecutionGraph(topology, {n: 6 for n in topology.components})
        report = _report(model, collocated_plan(graph), 1000.0)
        kinds = {v.kind for v in report.violations}
        assert ConstraintKind.CORES in kinds

    def test_cpu_constraint_violated_at_saturation(self, setup, tiny_machine):
        topology, profiles, model = setup
        graph = ExecutionGraph(
            topology, {"spout": 2, "stage": 1, "fan": 1, "sink": 1}
        )
        plan = collocated_plan(graph)
        report = _report(model, plan, 1e12)
        kinds = {v.kind for v in report.violations}
        assert ConstraintKind.CPU in kinds or ConstraintKind.CORES in kinds


class TestBandwidthConstraints:
    def test_memory_bandwidth_violation(self, tiny_machine):
        topology = build_pipeline()
        profiles = ProfileSet(
            topology,
            {
                "spout": OperatorProfile(
                    "spout", 10, 1e6, {"default": 100}, {"default": 1.0}
                ),
                "stage": OperatorProfile(
                    "stage", 10, 1e6, {"default": 100}, {"default": 1.0}
                ),
                "fan": OperatorProfile(
                    "fan", 10, 1e6, {"default": 100}, {"default": 1.0}
                ),
                "sink": OperatorProfile("sink", 10, 1e6, {}, {}),
            },
        )
        model = PerformanceModel(profiles, tiny_machine)
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        # 1 MB per tuple at high rate blows the 20 GB/s local bandwidth.
        report = _report(model, collocated_plan(graph), 1e6)
        kinds = {v.kind for v in report.violations}
        assert ConstraintKind.MEMORY_BANDWIDTH in kinds

    def test_interconnect_violation(self, setup, tiny_machine):
        topology, profiles, model = setup
        profiles = profiles.replace("spout", output_bytes={"default": 50_000.0})
        model = PerformanceModel(profiles, tiny_machine)
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        plan = empty_plan(graph).assign({0: 0, 1: 2, 2: 2, 3: 2})
        report = _report(model, plan, 1e12)
        kinds = {v.kind for v in report.violations}
        assert ConstraintKind.INTERCONNECT in kinds
        violation = next(
            v for v in report.violations if v.kind is ConstraintKind.INTERCONNECT
        )
        assert violation.location == (0, 2)
        assert violation.ratio > 1.0


class TestReport:
    def test_partial_plan_only_counts_placed(self, setup):
        topology, profiles, model = setup
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        plan = empty_plan(graph).assign({0: 0})
        report = _report(model, plan, 1e12)
        assert report.usage(0).replicas == 1
        assert report.usage(1).replicas == 0

    def test_is_feasible_helper(self, setup):
        topology, profiles, model = setup
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        plan = collocated_plan(graph)
        result = model.evaluate(plan, 1000.0)
        assert is_feasible(plan, result, model.machine, profiles)

    def test_violation_describe(self, setup):
        topology, profiles, model = setup
        graph = ExecutionGraph(topology, {n: 6 for n in topology.components})
        report = _report(model, collocated_plan(graph), 1000.0)
        text = report.violations[0].describe()
        assert "socket" in text

    def test_mismatched_machine_rejected(self, setup, machine_a):
        topology, profiles, model = setup
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        plan = collocated_plan(graph)
        result = model.evaluate(plan, 1000.0)
        with pytest.raises(ValueError, match="sockets"):
            resource_report(plan, result, machine_a, profiles)
