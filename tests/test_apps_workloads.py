"""Unit tests for the synthetic workload generators."""

from collections import Counter

import pytest

from repro.apps import linear_road_records, sensor_readings, sentences, take, transactions
from repro.apps.workloads import (
    ACCOUNT_BALANCE_REQUEST,
    DAILY_EXPENDITURE_REQUEST,
    POSITION_REPORT,
)


class TestSentences:
    def test_word_count_per_sentence(self):
        for (sentence,) in take(sentences(seed=1), 50):
            assert len(sentence.split()) == 10

    def test_deterministic_by_seed(self):
        assert take(sentences(seed=5), 20) == take(sentences(seed=5), 20)
        assert take(sentences(seed=5), 20) != take(sentences(seed=6), 20)

    def test_empty_fraction(self):
        items = take(sentences(seed=2, empty_fraction=0.5), 400)
        empties = sum(1 for (s,) in items if not s)
        assert 120 < empties < 280

    def test_custom_length(self):
        for (sentence,) in take(sentences(seed=1, words_per_sentence=3), 10):
            assert len(sentence.split()) == 3


class TestTransactions:
    def test_record_shape(self):
        for entity, trace in take(transactions(seed=1), 20):
            assert entity.startswith("acc_")
            assert len(trace.split(",")) == 5

    def test_fraud_fraction_visible(self):
        records = take(transactions(seed=3, fraud_fraction=0.5), 400)
        suspicious = sum(1 for _, trace in records if "max" in trace or trace.count("high") >= 3)
        assert suspicious > 100


class TestSensorReadings:
    def test_record_shape(self):
        for device, value, timestamp in take(sensor_readings(seed=1), 20):
            assert device.startswith("dev_")
            assert isinstance(value, float)
            assert timestamp > 0

    def test_timestamps_monotone(self):
        stamps = [t for _, _, t in take(sensor_readings(seed=1), 100)]
        assert stamps == sorted(stamps)

    def test_device_pool_respected(self):
        devices = {d for d, _, _ in take(sensor_readings(seed=1, n_devices=4), 200)}
        assert len(devices) <= 4


class TestLinearRoadRecords:
    def test_type_mix_matches_table8(self):
        records = take(linear_road_records(seed=1), 5000)
        kinds = Counter(r[0] for r in records)
        assert kinds[POSITION_REPORT] / len(records) > 0.97
        assert kinds[ACCOUNT_BALANCE_REQUEST] > 0
        assert kinds[DAILY_EXPENDITURE_REQUEST] > 0

    def test_position_reports_have_valid_fields(self):
        for record in take(linear_road_records(seed=2), 500):
            if record[0] != POSITION_REPORT:
                continue
            _, time, vid, speed, xway, lane, direction, segment, position, _, _ = record
            assert 0 <= speed < 100
            assert segment == position // 5280
            assert direction in (0, 1)

    def test_some_vehicles_are_stopped(self):
        records = take(linear_road_records(seed=3, stopped_fraction=0.05), 3000)
        stopped = [r for r in records if r[0] == POSITION_REPORT and r[3] == 0]
        assert stopped

    def test_deterministic(self):
        a = take(linear_road_records(seed=9), 100)
        b = take(linear_road_records(seed=9), 100)
        assert a == b
