"""Unit tests for the execution graph (replication + compression)."""

import pytest

from repro.dsps import ExecutionGraph, IterableSpout, MapOperator, Sink, TopologyBuilder
from repro.errors import PlanError

from tests.conftest import build_pipeline


@pytest.fixture()
def topology():
    return build_pipeline()


class TestExpansion:
    def test_task_counts(self, topology):
        graph = ExecutionGraph(
            topology, {"spout": 1, "stage": 2, "fan": 3, "sink": 1}
        )
        assert graph.n_tasks == 7
        assert graph.total_replicas == 7
        assert len(graph.tasks_of("fan")) == 3

    def test_task_ids_dense_and_topological(self, topology):
        graph = ExecutionGraph(
            topology, {"spout": 1, "stage": 2, "fan": 2, "sink": 1}
        )
        ids = [t.task_id for t in graph.topological_task_order()]
        assert ids == list(range(graph.n_tasks))

    def test_all_to_all_edges_for_shuffle(self, topology):
        graph = ExecutionGraph(
            topology, {"spout": 2, "stage": 3, "fan": 1, "sink": 1}
        )
        spout_tasks = graph.tasks_of("spout")
        stage_tasks = graph.tasks_of("stage")
        edges = [
            e for t in spout_tasks for e in graph.outgoing(t.task_id)
        ]
        assert len(edges) == len(spout_tasks) * len(stage_tasks)

    def test_shares_sum_to_one_per_producer(self, topology):
        graph = ExecutionGraph(
            topology, {"spout": 2, "stage": 5, "fan": 1, "sink": 1}
        )
        for task in graph.tasks_of("spout"):
            total = sum(e.share for e in graph.outgoing(task.task_id))
            assert total == pytest.approx(1.0)

    def test_missing_replication_rejected(self, topology):
        with pytest.raises(PlanError, match="replication missing"):
            ExecutionGraph(topology, {"spout": 1})

    def test_zero_replication_rejected(self, topology):
        with pytest.raises(PlanError, match=">= 1"):
            ExecutionGraph(
                topology, {"spout": 0, "stage": 1, "fan": 1, "sink": 1}
            )

    def test_unknown_component_rejected(self, topology):
        with pytest.raises(PlanError, match="unknown components"):
            ExecutionGraph(
                topology,
                {"spout": 1, "stage": 1, "fan": 1, "sink": 1, "ghost": 2},
            )

    def test_spout_and_sink_tasks(self, topology):
        graph = ExecutionGraph(
            topology, {"spout": 2, "stage": 1, "fan": 1, "sink": 3}
        )
        assert len(graph.spout_tasks) == 2
        assert len(graph.sink_tasks) == 3

    def test_navigation(self, topology):
        graph = ExecutionGraph(
            topology, {"spout": 1, "stage": 2, "fan": 1, "sink": 1}
        )
        fan = graph.tasks_of("fan")[0]
        assert len(graph.producers_of(fan.task_id)) == 2
        assert len(graph.consumers_of(fan.task_id)) == 1
        with pytest.raises(PlanError):
            graph.task(999)


class TestCompression:
    def test_groups_replicas(self, topology):
        graph = ExecutionGraph(
            topology, {"spout": 1, "stage": 1, "fan": 12, "sink": 1}, group_size=5
        )
        fan_tasks = graph.tasks_of("fan")
        assert [t.weight for t in fan_tasks] == [5, 5, 2]
        assert graph.total_replicas == 15

    def test_label_shows_replica_range(self, topology):
        graph = ExecutionGraph(
            topology, {"spout": 1, "stage": 1, "fan": 7, "sink": 1}, group_size=5
        )
        labels = [t.label for t in graph.tasks_of("fan")]
        assert labels == ["fan#0-4", "fan#5-6"]

    def test_weighted_shares_proportional(self, topology):
        graph = ExecutionGraph(
            topology, {"spout": 1, "stage": 1, "fan": 7, "sink": 1}, group_size=5
        )
        stage = graph.tasks_of("stage")[0]
        shares = {
            graph.task(e.consumer).label: e.share
            for e in graph.outgoing(stage.task_id)
        }
        assert shares["fan#0-4"] == pytest.approx(5 / 7)
        assert shares["fan#5-6"] == pytest.approx(2 / 7)

    def test_per_component_group_sizes(self, topology):
        graph = ExecutionGraph(
            topology,
            {"spout": 1, "stage": 4, "fan": 4, "sink": 1},
            group_size={"stage": 2, "fan": 4},
        )
        assert len(graph.tasks_of("stage")) == 2
        assert len(graph.tasks_of("fan")) == 1

    def test_replica_assignment_expands_groups(self, topology):
        graph = ExecutionGraph(
            topology, {"spout": 1, "stage": 1, "fan": 6, "sink": 1}, group_size=3
        )
        placement = {t.task_id: t.task_id % 2 for t in graph.tasks}
        assignment = graph.replica_assignment(placement)
        assert len([k for k in assignment if k[0] == "fan"]) == 6
        fan_tasks = graph.tasks_of("fan")
        for task in fan_tasks:
            for replica in task.replicas:
                assert assignment[("fan", replica)] == placement[task.task_id]

    def test_replica_assignment_requires_complete_placement(self, topology):
        graph = ExecutionGraph(
            topology, {"spout": 1, "stage": 1, "fan": 2, "sink": 1}
        )
        with pytest.raises(PlanError, match="placement missing"):
            graph.replica_assignment({0: 0})

    def test_invalid_group_size(self, topology):
        with pytest.raises(PlanError, match="group size"):
            ExecutionGraph(
                topology,
                {"spout": 1, "stage": 1, "fan": 1, "sink": 1},
                group_size=0,
            )


class TestSpecialGroupings:
    def _topology(self):
        builder = TopologyBuilder("special")
        builder.set_spout("s", IterableSpout([("x",)]))
        builder.add_operator("b", MapOperator(lambda v: v)).broadcast_from("s")
        builder.add_operator("g", MapOperator(lambda v: v)).global_from("b")
        builder.add_sink("z", Sink()).shuffle_from("g")
        return builder.build()

    def test_broadcast_share_is_weight(self):
        topology = self._topology()
        graph = ExecutionGraph(topology, {"s": 1, "b": 3, "g": 1, "z": 1})
        spout = graph.tasks_of("s")[0]
        shares = [e.share for e in graph.outgoing(spout.task_id)]
        assert shares == [1.0, 1.0, 1.0]

    def test_global_only_first_replica(self):
        topology = self._topology()
        graph = ExecutionGraph(topology, {"s": 1, "b": 2, "g": 3, "z": 1})
        g_tasks = graph.tasks_of("g")
        incoming = [len(graph.incoming(t.task_id)) for t in g_tasks]
        assert incoming[0] > 0
        assert all(n == 0 for n in incoming[1:])

    def test_broadcast_consumers_never_compressed(self):
        topology = self._topology()
        graph = ExecutionGraph(
            topology, {"s": 1, "b": 6, "g": 1, "z": 1}, group_size=5
        )
        assert all(t.weight == 1 for t in graph.tasks_of("b"))

    def test_describe(self):
        topology = self._topology()
        graph = ExecutionGraph(topology, {"s": 1, "b": 2, "g": 1, "z": 1})
        assert "execution graph" in graph.describe()
