"""Chaos suite: fault injection + supervised recovery across backends.

The matrix runs every example application with injected crashes and
stalls under each recovery policy and asserts the contract from
docs/robustness.md:

* ``fail-fast`` raises a *typed* :class:`ExecutionError` subclass that
  carries a partial-progress result — no scenario hangs;
* ``retry`` completes with final aggregates identical to a fault-free
  run (at-least-once: duplicates are measured, nothing is lost);
* ``degrade`` completes on a re-placed plan over the surviving sockets.

Fault schedules are seeded, so every scenario here is reproducible
bit-for-bit; the determinism test pins that property end-to-end through
the CLI.
"""

import json
import os
import subprocess
import sys
from collections import Counter as Multiset
from pathlib import Path

import pytest

from repro.apps import load_application
from repro.dsps import LocalEngine
from repro.errors import (
    ExecutionError,
    InjectedFaultError,
    StallError,
    WorkerCrashError,
)
from repro.hardware import server_a
from repro.runtime import (
    DegradeContext,
    FaultInjector,
    FaultPlan,
    ProcessPoolBackend,
)

EVENTS = 300
#: REPRO_CHAOS_QUICK=1 (CI's chaos-smoke job) trims the app matrix to WC;
#: the full local run covers all four applications.
APPS = (
    ("wc",)
    if os.environ.get("REPRO_CHAOS_QUICK")
    else ("wc", "fd", "sd", "lr")
)

#: Low, explicit trigger offset so every scheduled fault actually fires
#: within the quick-mode tuple volume.
AT = 20


def build_engine(app, **kwargs):
    topology, profiles = load_application(app)
    topology.component("sink").template.keep_samples = 10**6
    if kwargs.pop("with_degrade", False):
        kwargs["degrade"] = DegradeContext(
            profiles=profiles, machine=server_a(4)
        )
    return LocalEngine(topology, **kwargs)


def sink_multiset(result):
    return Multiset(
        tuple(item.values)
        for sinks in result.sinks.values()
        for sink in sinks
        for item in sink.samples
    )


@pytest.fixture(scope="module")
def baselines():
    return {app: build_engine(app).run(EVENTS) for app in APPS}


class TestFaultPlanParsing:
    def test_round_trip(self):
        plan = FaultPlan.from_cli("seed=7, kinds=crash|stall, n=2, at=100")
        assert plan.seed == 7
        assert plan.kinds == ("crash", "stall")
        assert plan.n_faults == 2
        assert plan.at_tuple == 100

    def test_target_and_attempt(self):
        plan = FaultPlan.from_cli("kind=raise,target=parser,attempt=1")
        assert plan.kinds == ("raise",)
        assert plan.target == "parser"
        assert plan.attempt == 1

    @pytest.mark.parametrize(
        "text",
        [
            "bogus",  # no key=value
            "seed=abc",  # non-integer
            "frobnicate=1",  # unknown key
            "kind=meteor",  # unknown fault kind
            "n=0",  # needs at least one fault
            "at=0",  # trigger offsets are 1-based
        ],
    )
    def test_rejects_bad_specs(self, text):
        with pytest.raises(ExecutionError):
            FaultPlan.from_cli(text)


class TestScheduling:
    def test_same_seed_same_schedule(self):
        spec = build_engine("wc").spec
        a = FaultPlan(seed=11, kinds=("crash", "drop"), n_faults=3).schedule(spec)
        b = FaultPlan(seed=11, kinds=("crash", "drop"), n_faults=3).schedule(spec)
        assert a == b

    def test_different_seed_diverges(self):
        spec = build_engine("wc").spec
        schedules = {
            FaultPlan(seed=s, n_faults=2).schedule(spec) for s in range(8)
        }
        assert len(schedules) > 1

    def test_target_restricts_components(self):
        spec = build_engine("wc").spec
        for fault in FaultPlan(
            seed=1, kinds=("raise",), n_faults=4, target="counter"
        ).schedule(spec):
            assert fault.component == "counter"

    def test_unsatisfiable_target_is_an_error(self):
        spec = build_engine("wc").spec
        with pytest.raises(ExecutionError, match="no eligible task"):
            FaultPlan(seed=1, target="no-such-operator").schedule(spec)

    def test_stall_never_targets_spouts(self):
        spec = build_engine("wc").spec
        for seed in range(10):
            (fault,) = FaultPlan(seed=seed, kinds=("stall",)).schedule(spec)
            assert not spec.runtime_of(fault.task_id).is_spout


class TestInjector:
    def test_fires_at_offset_once(self):
        spec = build_engine("wc").spec
        (fault,) = FaultPlan(seed=1, kinds=("raise",), at_tuple=5).schedule(spec)
        injector = FaultInjector((fault,), attempt=0)
        fired = [injector.tick(fault.task_id) for _ in range(10)]
        assert fired[:4] == [None] * 4
        assert fired[4] is fault
        assert fired[5:] == [None] * 5
        assert injector.summary()["faults_fired"] == 1.0

    def test_attempt_scoping(self):
        spec = build_engine("wc").spec
        (fault,) = FaultPlan(seed=1, kinds=("raise",), at_tuple=1, attempt=0).schedule(
            spec
        )
        replay = FaultInjector((fault,), attempt=1)
        assert all(replay.tick(fault.task_id) is None for _ in range(5))

    def test_drop_accounting(self):
        spec = build_engine("wc").spec
        (fault,) = FaultPlan(seed=1, kinds=("drop",), at_tuple=1).schedule(spec)
        injector = FaultInjector((fault,), attempt=0)
        injector.tick(fault.task_id)
        assert injector.take_drop(fault.task_id, 64) is True
        assert injector.take_drop(fault.task_id, 64) is False
        summary = injector.summary()
        assert summary["dropped_batches"] == 1.0
        assert summary["dropped_tuples"] == 64.0


class TestChaosMatrixInline:
    """4 apps x {crash, stall} x {fail-fast, retry, degrade}, quick mode."""

    @pytest.mark.parametrize("app", APPS)
    @pytest.mark.parametrize("kind", ["crash", "stall"])
    def test_fail_fast_raises_typed_error_with_partial(self, app, kind):
        engine = build_engine(
            app,
            fault_plan=FaultPlan(seed=3, kinds=(kind,), at_tuple=AT),
            recovery_policy="fail-fast",
        )
        expected = WorkerCrashError if kind == "crash" else StallError
        with pytest.raises(expected) as excinfo:
            engine.run(EVENTS)
        exc = excinfo.value
        assert exc.recovery is not None
        assert exc.recovery.completed is False
        assert exc.recovery.attempts == 1
        assert [e.kind for e in exc.recovery.events] == [
            "fault-detected",
            "failed",
        ]
        assert exc.partial_result is not None
        assert exc.partial_result.partial is True

    @pytest.mark.parametrize("app", APPS)
    @pytest.mark.parametrize("kind", ["crash", "stall"])
    def test_retry_replays_to_exact_aggregates(self, app, kind, baselines):
        engine = build_engine(
            app,
            fault_plan=FaultPlan(seed=3, kinds=(kind,), at_tuple=AT),
            recovery_policy="retry",
        )
        result = engine.run(EVENTS)
        recovery = result.recovery
        assert recovery.completed is True
        assert recovery.restarts == 1
        assert result.fault_summary["faults_fired"] >= 1.0
        # At-least-once: nothing lost, the replay's aggregates are exact.
        baseline = baselines[app]
        assert result.sink_received() == baseline.sink_received()
        assert sink_multiset(result) == sink_multiset(baseline)

    @pytest.mark.parametrize("app", APPS)
    @pytest.mark.parametrize("kind", ["crash", "stall"])
    def test_degrade_replans_and_completes(self, app, kind, baselines):
        engine = build_engine(
            app,
            fault_plan=FaultPlan(seed=3, kinds=(kind,), at_tuple=AT),
            recovery_policy="degrade",
            with_degrade=True,
        )
        result = engine.run(EVENTS)
        recovery = result.recovery
        assert recovery.completed is True
        assert recovery.replans == 1
        assert recovery.degraded_sockets  # at least one socket dropped
        assert "replan" in [e.kind for e in recovery.events]
        baseline = baselines[app]
        assert result.sink_received() == baseline.sink_received()
        assert sink_multiset(result) == sink_multiset(baseline)

    @pytest.mark.parametrize("app", APPS)
    def test_raise_retry(self, app, baselines):
        engine = build_engine(
            app,
            fault_plan=FaultPlan(seed=5, kinds=("raise",), at_tuple=AT),
            recovery_policy="retry",
        )
        result = engine.run(EVENTS)
        assert result.recovery.completed
        assert result.sink_received() == baselines[app].sink_received()

    @pytest.mark.parametrize("app", APPS)
    def test_drop_detected_and_replayed(self, app, baselines):
        engine = build_engine(
            app,
            fault_plan=FaultPlan(seed=9, kinds=("drop",), at_tuple=AT),
            recovery_policy="retry",
        )
        result = engine.run(EVENTS)
        assert result.fault_summary["dropped_tuples"] >= 1.0
        # Message loss was detected and the run replayed to exactness.
        assert result.sink_received() == baselines[app].sink_received()
        assert sink_multiset(result) == sink_multiset(baselines[app])

    def test_raise_fail_fast_is_typed(self):
        engine = build_engine(
            "wc",
            fault_plan=FaultPlan(seed=5, kinds=("raise",), at_tuple=AT),
            recovery_policy="fail-fast",
        )
        with pytest.raises(InjectedFaultError):
            engine.run(EVENTS)

    def test_drop_fail_fast_reports_loss(self):
        engine = build_engine(
            "wc",
            fault_plan=FaultPlan(seed=9, kinds=("drop",), at_tuple=AT),
            recovery_policy="fail-fast",
        )
        with pytest.raises(ExecutionError, match="message loss"):
            engine.run(EVENTS)

    def test_duplicate_deliveries_are_measured(self, baselines):
        # Crash the sink-adjacent aggregator late enough that earlier
        # attempts delivered tuples to sinks: those deliveries repeat on
        # replay and must show up in the counter.
        engine = build_engine(
            "wc",
            fault_plan=FaultPlan(
                seed=1, kinds=("crash",), target="sink", at_tuple=50
            ),
            recovery_policy="retry",
        )
        result = engine.run(EVENTS)
        assert result.recovery.completed
        # The sink crashed on its 50th input, so 49 tuples had already
        # been delivered and are delivered again by the replay.
        assert result.recovery.duplicate_deliveries == 49
        assert result.sink_received() == baselines["wc"].sink_received()


class TestProcessBackendChaos:
    """The process backend's watchdogs under real process death."""

    def test_killed_worker_raises_within_timeout(self, baselines):
        # The crash fault os._exit()s a live worker mid-run: the parent
        # watchdog must convert the death into a typed error (previously
        # this scenario hung on a blocking results.get / queue put).
        backend = ProcessPoolBackend(
            n_workers=2, timeout_s=60.0, heartbeat_timeout_s=5.0
        )
        engine = build_engine(
            "wc",
            backend=backend,
            fault_plan=FaultPlan(seed=3, kinds=("crash",), at_tuple=AT),
            recovery_policy="fail-fast",
        )
        with pytest.raises(WorkerCrashError) as excinfo:
            engine.run(EVENTS)
        assert excinfo.value.failed_workers
        assert excinfo.value.recovery is not None

    def test_killed_worker_recovers_under_retry(self, baselines):
        backend = ProcessPoolBackend(
            n_workers=2, timeout_s=60.0, heartbeat_timeout_s=5.0
        )
        engine = build_engine(
            "wc",
            backend=backend,
            fault_plan=FaultPlan(seed=3, kinds=("crash",), at_tuple=AT),
            recovery_policy="retry",
        )
        result = engine.run(EVENTS)
        assert result.recovery.completed
        assert result.recovery.restarts >= 1
        assert result.sink_received() == baselines["wc"].sink_received()
        assert sink_multiset(result) == sink_multiset(baselines["wc"])

    def test_killed_worker_under_shm_leaks_no_segments(self, baselines):
        # A worker killed mid-run never reaches its channel.close(); the
        # parent owns the ring segments and must still unlink every one,
        # attempt after attempt, or /dev/shm fills up across retries.
        from repro.runtime import shm_available
        from repro.runtime.dataplane import SHM_NAME_PREFIX

        if not shm_available():
            pytest.skip("no POSIX shared memory")
        shm_dir = Path("/dev/shm")
        if not shm_dir.is_dir():
            pytest.skip("no /dev/shm to observe")
        before = {p.name for p in shm_dir.glob(f"{SHM_NAME_PREFIX}*")}
        backend = ProcessPoolBackend(
            n_workers=2,
            timeout_s=60.0,
            heartbeat_timeout_s=5.0,
            dataplane="shm",
        )
        engine = build_engine(
            "wc",
            backend=backend,
            fault_plan=FaultPlan(seed=3, kinds=("crash",), at_tuple=AT),
            recovery_policy="retry",
        )
        result = engine.run(EVENTS)
        assert result.recovery.completed
        assert result.sink_received() == baselines["wc"].sink_received()
        leaked = {
            p.name for p in shm_dir.glob(f"{SHM_NAME_PREFIX}*")
        } - before
        assert not leaked, f"leaked shm segments: {sorted(leaked)}"

    def test_stalled_worker_trips_heartbeat_watchdog(self):
        backend = ProcessPoolBackend(
            n_workers=2, timeout_s=60.0, heartbeat_timeout_s=1.0
        )
        engine = build_engine(
            "wc",
            backend=backend,
            fault_plan=FaultPlan(seed=5, kinds=("stall",), at_tuple=AT),
            recovery_policy="fail-fast",
        )
        with pytest.raises(StallError, match="heartbeat"):
            engine.run(EVENTS)


class TestDeterminism:
    """Same seed => identical fault schedule and identical aggregates."""

    def _run(self, tmp_path: Path, tag: str) -> tuple[dict, str]:
        report = tmp_path / f"chaos-{tag}.json"
        env = dict(os.environ)
        root = Path(__file__).resolve().parents[1]
        env["PYTHONPATH"] = str(root / "src")
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "run",
                "wc",
                "--events",
                "200",
                "--inject-faults",
                "seed=5,kinds=crash|drop,n=2,at=15",
                "--recovery-policy",
                "retry",
                "--emit-metrics",
                str(report),
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
            cwd=root,
        )
        assert proc.returncode == 0, proc.stderr
        sink_line = next(
            line for line in proc.stdout.splitlines() if "sink received" in line
        )
        return json.loads(report.read_text()), sink_line

    def test_two_runs_match(self, tmp_path):
        report_a, sink_a = self._run(tmp_path, "a")
        report_b, sink_b = self._run(tmp_path, "b")
        assert sink_a == sink_b
        rec_a = report_a["data"]["recovery"]
        rec_b = report_b["data"]["recovery"]
        assert rec_a["fault_schedule"] == rec_b["fault_schedule"]
        assert rec_a["fault_schedule"]  # schedule actually recorded
        assert rec_a["attempts"] == rec_b["attempts"]
        assert rec_a["duplicate_deliveries"] == rec_b["duplicate_deliveries"]
        assert (
            report_a["data"]["fault_summary"] == report_b["data"]["fault_summary"]
        )
