"""Unit tests for the MLC-style measurement report."""

import numpy as np
import pytest

from repro.hardware import run_mlc


class TestMlc:
    def test_exact_without_jitter(self, machine_a):
        report = run_mlc(machine_a)
        assert report.latency_ns[0, 0] == 50.0
        assert report.latency_ns[0, 4] == pytest.approx(548.0)
        assert report.local_latency() == pytest.approx(50.0)
        assert report.max_latency() == pytest.approx(548.0)

    def test_total_local_bandwidth(self, machine_a):
        report = run_mlc(machine_a)
        assert report.total_local_bandwidth() == pytest.approx(
            machine_a.total_local_bandwidth
        )

    def test_jitter_perturbs_but_preserves_scale(self, machine_a):
        report = run_mlc(machine_a, jitter=0.02, seed=42)
        exact = machine_a.latency_matrix()
        assert not np.allclose(report.latency_ns, exact)
        assert np.allclose(report.latency_ns, exact, rtol=0.15)

    def test_jitter_deterministic_by_seed(self, machine_a):
        a = run_mlc(machine_a, jitter=0.05, seed=7)
        b = run_mlc(machine_a, jitter=0.05, seed=7)
        assert np.array_equal(a.latency_ns, b.latency_ns)

    def test_format_table_lists_all_nodes(self, machine_b):
        text = run_mlc(machine_b).format_table()
        for socket in range(machine_b.n_sockets):
            assert f"node  {socket}" in text

    def test_n_sockets(self, machine_b):
        assert run_mlc(machine_b).n_sockets == 8
