"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.metrics import load_report


class TestParser:
    def test_machines_command(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "Server" in out or "processor" in out
        assert "KunLun" in out or "A" in out

    def test_profile_command(self, capsys):
        assert main(["profile", "--app", "wc"]) == 0
        out = capsys.readouterr().out
        assert "splitter" in out
        assert "Te (cycles)" in out

    def test_optimize_small(self, capsys):
        # 1 socket keeps the run fast.
        assert (
            main(
                [
                    "optimize",
                    "--app",
                    "fd",
                    "--sockets",
                    "1",
                    "--compress-ratio",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "RLAS plan" in out
        assert "replication" in out

    def test_simulate_small(self, capsys):
        assert main(["simulate", "--app", "fd", "--sockets", "1"]) == 0
        out = capsys.readouterr().out
        assert "measured throughput" in out

    def test_run_command(self, capsys):
        assert main(["run", "wc", "--events", "200"]) == 0
        out = capsys.readouterr().out
        assert "Engine run" in out

    def test_run_bounded_queues(self, capsys):
        assert main(["run", "wc", "--events", "200", "--queue-capacity", "128"]) == 0
        out = capsys.readouterr().out
        assert "sink received: 2000 tuples" in out

    def test_run_process_backend(self, capsys):
        assert (
            main(
                [
                    "run",
                    "wc",
                    "--events",
                    "200",
                    "--backend",
                    "process",
                    "--workers",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "sink received: 2000 tuples" in out

    def test_run_emits_metrics_report(self, tmp_path, capsys):
        target = tmp_path / "m.json"
        assert main(["run", "wc", "--events", "200", "--emit-metrics", str(target)]) == 0
        report = load_report(target)
        assert report.kind == "engine-run"
        assert report.meta["app"] == "wc"
        assert any(n.endswith(".tuples_in") for n in report.counters())
        histograms = report.histograms()
        assert any(n.endswith(".process_ns") for n in histograms)
        stats = next(h for n, h in histograms.items() if n.endswith(".process_ns"))
        assert {"p50", "p95", "p99"} <= set(stats)

    def test_optimize_emits_metrics_report(self, tmp_path, capsys):
        target = tmp_path / "opt.json"
        assert (
            main(
                [
                    "optimize",
                    "--app",
                    "fd",
                    "--sockets",
                    "1",
                    "--compress-ratio",
                    "3",
                    "--emit-metrics",
                    str(target),
                ]
            )
            == 0
        )
        report = load_report(target)
        assert report.kind == "optimize"
        assert report.counters()["rlas.bnb.nodes_expanded"] > 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["optimize", "--app", "nope"])

    def test_tf_mode_choices(self):
        args = build_parser().parse_args(["optimize", "--tf-mode", "worst"])
        assert args.tf_mode == "worst"
