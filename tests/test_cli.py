"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_machines_command(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "Server" in out or "processor" in out
        assert "KunLun" in out or "A" in out

    def test_profile_command(self, capsys):
        assert main(["profile", "--app", "wc"]) == 0
        out = capsys.readouterr().out
        assert "splitter" in out
        assert "Te (cycles)" in out

    def test_optimize_small(self, capsys):
        # 1 socket keeps the run fast.
        assert (
            main(
                [
                    "optimize",
                    "--app",
                    "fd",
                    "--sockets",
                    "1",
                    "--compress-ratio",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "RLAS plan" in out
        assert "replication" in out

    def test_simulate_small(self, capsys):
        assert main(["simulate", "--app", "fd", "--sockets", "1"]) == 0
        out = capsys.readouterr().out
        assert "measured throughput" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["optimize", "--app", "nope"])

    def test_tf_mode_choices(self):
        args = build_parser().parse_args(["optimize", "--tf-mode", "worst"])
        assert args.tf_mode == "worst"
