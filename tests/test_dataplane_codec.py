"""Data-plane unit tests: binary batch codec and shared-memory rings.

The codec must be *lossless* for every batch it accepts on the columnar
path and must fall back to pickle (never fail, never corrupt) for every
batch it cannot encode — the property tests drive both paths with
generated schemas and adversarial values.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsps.tuples import StreamTuple
from repro.runtime.dataplane import (
    BatchCodec,
    ShmRing,
    infer_schema,
    shm_available,
    validate_schema,
)
from repro.runtime.dataplane.codec import FIELD_TYPECODES

EDGE = (0, 1)

_VALUE_STRATEGIES = {
    "q": st.integers(min_value=-(2**63), max_value=2**63 - 1),
    "d": st.floats(allow_nan=False, allow_infinity=False),
    "?": st.booleans(),
    "s": st.text(max_size=40),
    "y": st.binary(max_size=40),
}


def batches(schema_alphabet=FIELD_TYPECODES, max_arity=5, max_rows=30):
    """Strategy: (schema, rows) with rows conforming to the schema."""

    def rows_for(schema):
        row = st.tuples(*(_VALUE_STRATEGIES[c] for c in schema))
        return st.lists(row, min_size=0, max_size=max_rows).map(
            lambda rows: (schema, rows)
        )

    return st.text(
        alphabet=schema_alphabet, min_size=1, max_size=max_arity
    ).flatmap(rows_for)


def make_tuples(rows, stream="default", source_task=3):
    return [
        StreamTuple(
            values=row,
            stream=stream,
            source_task=source_task,
            event_time_ns=float(i),
        )
        for i, row in enumerate(rows)
    ]


def assert_batches_equal(decoded, original):
    assert len(decoded) == len(original)
    for got, want in zip(decoded, original):
        assert got.values == want.values
        assert got.stream == want.stream
        assert got.source_task == want.source_task
        assert got.event_time_ns == want.event_time_ns


class TestSchemaHelpers:
    def test_validate_accepts_known_typecodes(self):
        validate_schema("qd?sy")

    def test_validate_rejects_unknown_typecode(self):
        with pytest.raises(ValueError):
            validate_schema("qx")

    def test_validate_rejects_empty(self):
        with pytest.raises(ValueError):
            validate_schema("")

    def test_infer_schema_exact_types(self):
        assert infer_schema((1, 2.0, True, "a", b"b")) == "qd?sy"

    def test_infer_schema_rejects_unsupported(self):
        assert infer_schema((1, [2])) is None

    def test_bool_is_not_int(self):
        # bool is an int subclass; the codec must keep them distinct.
        assert infer_schema((True,)) == "?"
        assert infer_schema((1,)) == "q"


class TestCodecRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(batches())
    def test_declared_schema_round_trip(self, schema_rows):
        schema, rows = schema_rows
        codec = BatchCodec({EDGE: schema})
        original = make_tuples(rows)
        decoded = codec.decode(codec.encode(EDGE, original))
        assert_batches_equal(decoded, original)
        assert codec.fallback_batches == 0

    @settings(max_examples=100, deadline=None)
    @given(batches())
    def test_inferred_schema_round_trip(self, schema_rows):
        _, rows = schema_rows
        codec = BatchCodec()
        original = make_tuples(rows)
        decoded = codec.decode(codec.encode(EDGE, original))
        assert_batches_equal(decoded, original)

    @settings(max_examples=100, deadline=None)
    @given(st.text())
    def test_unicode_strings_survive(self, text):
        codec = BatchCodec({EDGE: "s"})
        original = make_tuples([(text,)])
        try:
            text.encode("utf-8")
        except UnicodeEncodeError:
            pass  # surrogates: must still round-trip via the fallback
        decoded = codec.decode(codec.encode(EDGE, original))
        assert_batches_equal(decoded, original)

    def test_empty_batch(self):
        codec = BatchCodec({EDGE: "qq"})
        payload = codec.encode(EDGE, [])
        assert codec.decode(payload) == []

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.one_of(st.integers(), st.none()),
                st.one_of(st.text(max_size=10), st.none()),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_none_bearing_rows_fall_back_losslessly(self, rows):
        codec = BatchCodec({EDGE: "qs"})
        original = make_tuples(rows)
        decoded = codec.decode(codec.encode(EDGE, original))
        assert_batches_equal(decoded, original)
        if any(v is None for row in rows for v in row):
            assert codec.fallback_batches > 0

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1, max_value=50))
    def test_fallback_counted_once_per_batch(self, n_rows):
        # The documented semantics: ``fallback_batches`` (surfaced as
        # runtime.dataplane.codec_fallbacks) counts sealed *batches* that
        # took the pickle path — exactly one increment per encode() call
        # regardless of how many tuples the batch carries.
        codec = BatchCodec({EDGE: "q"})
        original = make_tuples([(None,)] * n_rows)
        decoded = codec.decode(codec.encode(EDGE, original))
        assert_batches_equal(decoded, original)
        assert codec.fallback_batches == 1
        codec.encode(EDGE, original)
        assert codec.fallback_batches == 2

    def test_schema_mismatch_falls_back(self):
        codec = BatchCodec({EDGE: "q"})
        original = make_tuples([("not an int",)])
        decoded = codec.decode(codec.encode(EDGE, original))
        assert_batches_equal(decoded, original)
        assert codec.fallback_batches == 1

    def test_out_of_range_int_falls_back(self):
        codec = BatchCodec({EDGE: "q"})
        original = make_tuples([(2**80,)])
        decoded = codec.decode(codec.encode(EDGE, original))
        assert_batches_equal(decoded, original)
        assert codec.fallback_batches == 1

    def test_ragged_arity_falls_back(self):
        codec = BatchCodec({EDGE: "qq"})
        original = make_tuples([(1, 2), (3,)])
        decoded = codec.decode(codec.encode(EDGE, original))
        assert_batches_equal(decoded, original)

    def test_mixed_streams_fall_back(self):
        codec = BatchCodec({EDGE: "q"})
        original = make_tuples([(1,)], stream="a") + make_tuples(
            [(2,)], stream="b"
        )
        decoded = codec.decode(codec.encode(EDGE, original))
        assert_batches_equal(decoded, original)

    def test_columnar_beats_pickle_on_scalar_batch(self):
        codec = BatchCodec({EDGE: "sq"})
        original = make_tuples([(f"word{i}", i) for i in range(64)])
        payload = codec.encode(EDGE, original)
        assert len(payload) < len(
            pickle.dumps(original, protocol=pickle.HIGHEST_PROTOCOL)
        )

    def test_invalid_declared_schema_rejected(self):
        with pytest.raises(ValueError):
            BatchCodec({EDGE: "zz"})


#: Adversarial string shapes for the dictionary path: empty strings,
#: astral-plane and combining codepoints (multi-byte utf-8, zero-width
#: joiners), and multi-KB outliers that dwarf the page header.
_COMBINING_AND_ASTRAL = "́̈‍\U0001f600\U0001f680\U0001d54a"
_ADVERSARIAL_STRING = st.one_of(
    st.just(""),
    st.text(max_size=20),
    st.text(alphabet=_COMBINING_AND_ASTRAL, min_size=1, max_size=6),
    st.builds(
        lambda char, n: char * n,
        st.sampled_from("xé\U0001f600"),
        st.integers(min_value=1000, max_value=4000),
    ),
)


class TestDictCodec:
    """Dictionary-encoded string path: losslessness, pages, adaptivity.

    A forced-dict encoder and a raw encoder must be observationally
    identical after decode for *any* string column the columnar path
    accepts — including the adversarial shapes above — and every
    adaptivity transition (promote, reject, demote, fallback-recover)
    must leave the codec in a state that still round-trips.
    """

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.lists(_ADVERSARIAL_STRING, min_size=0, max_size=20),
            min_size=1,
            max_size=4,
        )
    )
    def test_dict_path_matches_raw_path(self, word_batches):
        raw = BatchCodec({EDGE: "s"}, string_dict="off")
        encoder = BatchCodec({EDGE: "s"}, string_dict="on")
        decoder = BatchCodec({EDGE: "s"})
        for words in word_batches:
            original = make_tuples([(word,) for word in words])
            assert_batches_equal(
                raw.decode(raw.encode(EDGE, original)), original
            )
            assert_batches_equal(
                decoder.decode(encoder.encode(EDGE, original), edge=EDGE),
                original,
            )
        assert raw.fallback_batches == 0
        assert encoder.fallback_batches == 0

    @settings(max_examples=100, deadline=None)
    @given(st.text())
    def test_unicode_survives_dict_mode(self, text):
        # Surrogate-bearing strings cannot utf-8 encode; the dict path
        # must roll back its table additions and the batch must still
        # round-trip via the pickle fallback.
        encoder = BatchCodec({EDGE: "s"}, string_dict="on")
        decoder = BatchCodec()
        original = make_tuples([(text,)])
        decoded = decoder.decode(encoder.encode(EDGE, original), edge=EDGE)
        assert_batches_equal(decoded, original)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1, max_value=20))
    def test_all_none_column_falls_back_then_recovers(self, n_rows):
        encoder = BatchCodec({EDGE: "s"}, string_dict="on")
        decoder = BatchCodec()
        nones = make_tuples([(None,)] * n_rows)
        assert_batches_equal(
            decoder.decode(encoder.encode(EDGE, nones), edge=EDGE), nones
        )
        assert encoder.fallback_batches == 1
        # The failed batch must not wedge the column: the next clean
        # batch dict-encodes and decodes against an intact mirror.
        words = make_tuples([("hello",)] * n_rows)
        assert_batches_equal(
            decoder.decode(encoder.encode(EDGE, words), edge=EDGE), words
        )
        assert encoder.fallback_batches == 1

    def test_auto_promotes_exactly_at_observation_floor(self):
        encoder = BatchCodec(
            {EDGE: "s"}, string_dict="auto", dict_min_observed=32
        )
        decoder = BatchCodec()
        original = make_tuples([(f"w{i % 4}",) for i in range(16)])
        first = encoder.encode(EDGE, original)  # observed 16 < 32: raw
        assert encoder.dict_promotions == 0
        second = encoder.encode(EDGE, original)  # observed 32: promote
        assert encoder.dict_promotions == 1
        assert encoder.dict_columns == 1
        assert_batches_equal(decoder.decode(first, edge=EDGE), original)
        assert_batches_equal(decoder.decode(second, edge=EDGE), original)

    def test_auto_rejects_high_cardinality_columns(self):
        encoder = BatchCodec(
            {EDGE: "s"}, string_dict="auto", dict_min_observed=32
        )
        for base in range(4):  # 64 observed, all distinct: never promote
            original = make_tuples(
                [(f"uniq-{base}-{i}",) for i in range(16)]
            )
            encoder.encode(EDGE, original)
        assert encoder.dict_promotions == 0
        assert encoder.dict_columns == 0

    def test_forced_dict_demotes_past_entry_cap(self):
        encoder = BatchCodec(
            {EDGE: "s"}, string_dict="on", dict_max_entries=8
        )
        decoder = BatchCodec()
        first = make_tuples([(f"w{i}",) for i in range(8)])
        page_one = encoder.encode(EDGE, first)
        assert encoder.dict_promotions == 1
        assert encoder.dict_demotions == 0
        second = make_tuples([(f"w{i}",) for i in range(8, 20)])
        page_two = encoder.encode(EDGE, second)  # blows the cap: demote
        assert encoder.dict_demotions == 1
        assert encoder.dict_columns == 0
        assert_batches_equal(decoder.decode(page_one, edge=EDGE), first)
        assert_batches_equal(decoder.decode(page_two, edge=EDGE), second)
        assert encoder.fallback_batches == 0

    def test_repeat_batches_ship_empty_pages_and_shrink(self):
        encoder = BatchCodec({EDGE: "s"}, string_dict="on")
        original = make_tuples([("alpha",), ("beta",)] * 8)
        first = encoder.encode(EDGE, original)
        pages = encoder.dict_pages
        second = encoder.encode(EDGE, original)
        # All entries shipped with the first batch: the second carries
        # only the 8-byte empty page header plus codes.
        assert len(second) < len(first)
        assert encoder.dict_pages == pages

    def test_fresh_consumer_detects_page_gap(self):
        encoder = BatchCodec({EDGE: "s"}, string_dict="on")
        encoder.encode(EDGE, make_tuples([("alpha",)]))
        stale = encoder.encode(EDGE, make_tuples([("beta",)]))
        fresh = BatchCodec()
        with pytest.raises(ValueError, match="dictionary page gap"):
            fresh.decode(stale, edge=EDGE)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            BatchCodec({EDGE: "s"}, string_dict="zstd")


@pytest.mark.skipif(not shm_available(), reason="no POSIX shared memory")
class TestShmRing:
    def test_write_read_round_trip(self):
        ring = ShmRing.create("rdptest_rt", 256)
        try:
            start = ring.try_write(b"hello")
            assert start is not None
            assert ring.consume(start, 5) == b"hello"
        finally:
            ring.close()
            ring.unlink()

    def test_wraparound(self):
        ring = ShmRing.create("rdptest_wrap", 64)
        try:
            for i in range(10):  # forces several wraps of the 64-byte ring
                payload = bytes([i]) * 40
                start = ring.try_write(payload)
                assert start is not None
                assert ring.consume(start, len(payload)) == payload
        finally:
            ring.close()
            ring.unlink()

    def test_full_ring_refuses_then_accepts_after_drain(self):
        ring = ShmRing.create("rdptest_full", 64)
        try:
            first = ring.try_write(b"a" * 40)
            assert first is not None
            assert ring.try_write(b"b" * 40) is None  # only 24 bytes free
            assert ring.consume(first, 40) == b"a" * 40
            assert ring.try_write(b"b" * 40) is not None
        finally:
            ring.close()
            ring.unlink()

    def test_oversized_payload_never_fits(self):
        ring = ShmRing.create("rdptest_big", 64)
        try:
            assert ring.try_write(b"x" * 65) is None
        finally:
            ring.close()
            ring.unlink()

    def test_attach_sees_writes(self):
        ring = ShmRing.create("rdptest_attach", 128)
        try:
            reader = ShmRing.attach("rdptest_attach")
            start = ring.try_write(b"shared")
            assert reader.consume(start, 6) == b"shared"
            reader.close()
        finally:
            ring.close()
            ring.unlink()
