"""Data-plane unit tests: binary batch codec and shared-memory rings.

The codec must be *lossless* for every batch it accepts on the columnar
path and must fall back to pickle (never fail, never corrupt) for every
batch it cannot encode — the property tests drive both paths with
generated schemas and adversarial values.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsps.tuples import StreamTuple
from repro.runtime.dataplane import (
    BatchCodec,
    ShmRing,
    infer_schema,
    shm_available,
    validate_schema,
)
from repro.runtime.dataplane.codec import FIELD_TYPECODES

EDGE = (0, 1)

_VALUE_STRATEGIES = {
    "q": st.integers(min_value=-(2**63), max_value=2**63 - 1),
    "d": st.floats(allow_nan=False, allow_infinity=False),
    "?": st.booleans(),
    "s": st.text(max_size=40),
    "y": st.binary(max_size=40),
}


def batches(schema_alphabet=FIELD_TYPECODES, max_arity=5, max_rows=30):
    """Strategy: (schema, rows) with rows conforming to the schema."""

    def rows_for(schema):
        row = st.tuples(*(_VALUE_STRATEGIES[c] for c in schema))
        return st.lists(row, min_size=0, max_size=max_rows).map(
            lambda rows: (schema, rows)
        )

    return st.text(
        alphabet=schema_alphabet, min_size=1, max_size=max_arity
    ).flatmap(rows_for)


def make_tuples(rows, stream="default", source_task=3):
    return [
        StreamTuple(
            values=row,
            stream=stream,
            source_task=source_task,
            event_time_ns=float(i),
        )
        for i, row in enumerate(rows)
    ]


def assert_batches_equal(decoded, original):
    assert len(decoded) == len(original)
    for got, want in zip(decoded, original):
        assert got.values == want.values
        assert got.stream == want.stream
        assert got.source_task == want.source_task
        assert got.event_time_ns == want.event_time_ns


class TestSchemaHelpers:
    def test_validate_accepts_known_typecodes(self):
        validate_schema("qd?sy")

    def test_validate_rejects_unknown_typecode(self):
        with pytest.raises(ValueError):
            validate_schema("qx")

    def test_validate_rejects_empty(self):
        with pytest.raises(ValueError):
            validate_schema("")

    def test_infer_schema_exact_types(self):
        assert infer_schema((1, 2.0, True, "a", b"b")) == "qd?sy"

    def test_infer_schema_rejects_unsupported(self):
        assert infer_schema((1, [2])) is None

    def test_bool_is_not_int(self):
        # bool is an int subclass; the codec must keep them distinct.
        assert infer_schema((True,)) == "?"
        assert infer_schema((1,)) == "q"


class TestCodecRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(batches())
    def test_declared_schema_round_trip(self, schema_rows):
        schema, rows = schema_rows
        codec = BatchCodec({EDGE: schema})
        original = make_tuples(rows)
        decoded = codec.decode(codec.encode(EDGE, original))
        assert_batches_equal(decoded, original)
        assert codec.fallback_batches == 0

    @settings(max_examples=100, deadline=None)
    @given(batches())
    def test_inferred_schema_round_trip(self, schema_rows):
        _, rows = schema_rows
        codec = BatchCodec()
        original = make_tuples(rows)
        decoded = codec.decode(codec.encode(EDGE, original))
        assert_batches_equal(decoded, original)

    @settings(max_examples=100, deadline=None)
    @given(st.text())
    def test_unicode_strings_survive(self, text):
        codec = BatchCodec({EDGE: "s"})
        original = make_tuples([(text,)])
        try:
            text.encode("utf-8")
        except UnicodeEncodeError:
            pass  # surrogates: must still round-trip via the fallback
        decoded = codec.decode(codec.encode(EDGE, original))
        assert_batches_equal(decoded, original)

    def test_empty_batch(self):
        codec = BatchCodec({EDGE: "qq"})
        payload = codec.encode(EDGE, [])
        assert codec.decode(payload) == []

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.one_of(st.integers(), st.none()),
                st.one_of(st.text(max_size=10), st.none()),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_none_bearing_rows_fall_back_losslessly(self, rows):
        codec = BatchCodec({EDGE: "qs"})
        original = make_tuples(rows)
        decoded = codec.decode(codec.encode(EDGE, original))
        assert_batches_equal(decoded, original)
        if any(v is None for row in rows for v in row):
            assert codec.fallback_batches > 0

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1, max_value=50))
    def test_fallback_counted_once_per_batch(self, n_rows):
        # The documented semantics: ``fallback_batches`` (surfaced as
        # runtime.dataplane.codec_fallbacks) counts sealed *batches* that
        # took the pickle path — exactly one increment per encode() call
        # regardless of how many tuples the batch carries.
        codec = BatchCodec({EDGE: "q"})
        original = make_tuples([(None,)] * n_rows)
        decoded = codec.decode(codec.encode(EDGE, original))
        assert_batches_equal(decoded, original)
        assert codec.fallback_batches == 1
        codec.encode(EDGE, original)
        assert codec.fallback_batches == 2

    def test_schema_mismatch_falls_back(self):
        codec = BatchCodec({EDGE: "q"})
        original = make_tuples([("not an int",)])
        decoded = codec.decode(codec.encode(EDGE, original))
        assert_batches_equal(decoded, original)
        assert codec.fallback_batches == 1

    def test_out_of_range_int_falls_back(self):
        codec = BatchCodec({EDGE: "q"})
        original = make_tuples([(2**80,)])
        decoded = codec.decode(codec.encode(EDGE, original))
        assert_batches_equal(decoded, original)
        assert codec.fallback_batches == 1

    def test_ragged_arity_falls_back(self):
        codec = BatchCodec({EDGE: "qq"})
        original = make_tuples([(1, 2), (3,)])
        decoded = codec.decode(codec.encode(EDGE, original))
        assert_batches_equal(decoded, original)

    def test_mixed_streams_fall_back(self):
        codec = BatchCodec({EDGE: "q"})
        original = make_tuples([(1,)], stream="a") + make_tuples(
            [(2,)], stream="b"
        )
        decoded = codec.decode(codec.encode(EDGE, original))
        assert_batches_equal(decoded, original)

    def test_columnar_beats_pickle_on_scalar_batch(self):
        codec = BatchCodec({EDGE: "sq"})
        original = make_tuples([(f"word{i}", i) for i in range(64)])
        payload = codec.encode(EDGE, original)
        assert len(payload) < len(
            pickle.dumps(original, protocol=pickle.HIGHEST_PROTOCOL)
        )

    def test_invalid_declared_schema_rejected(self):
        with pytest.raises(ValueError):
            BatchCodec({EDGE: "zz"})


@pytest.mark.skipif(not shm_available(), reason="no POSIX shared memory")
class TestShmRing:
    def test_write_read_round_trip(self):
        ring = ShmRing.create("rdptest_rt", 256)
        try:
            start = ring.try_write(b"hello")
            assert start is not None
            assert ring.consume(start, 5) == b"hello"
        finally:
            ring.close()
            ring.unlink()

    def test_wraparound(self):
        ring = ShmRing.create("rdptest_wrap", 64)
        try:
            for i in range(10):  # forces several wraps of the 64-byte ring
                payload = bytes([i]) * 40
                start = ring.try_write(payload)
                assert start is not None
                assert ring.consume(start, len(payload)) == payload
        finally:
            ring.close()
            ring.unlink()

    def test_full_ring_refuses_then_accepts_after_drain(self):
        ring = ShmRing.create("rdptest_full", 64)
        try:
            first = ring.try_write(b"a" * 40)
            assert first is not None
            assert ring.try_write(b"b" * 40) is None  # only 24 bytes free
            assert ring.consume(first, 40) == b"a" * 40
            assert ring.try_write(b"b" * 40) is not None
        finally:
            ring.close()
            ring.unlink()

    def test_oversized_payload_never_fits(self):
        ring = ShmRing.create("rdptest_big", 64)
        try:
            assert ring.try_write(b"x" * 65) is None
        finally:
            ring.close()
            ring.unlink()

    def test_attach_sees_writes(self):
        ring = ShmRing.create("rdptest_attach", 128)
        try:
            reader = ShmRing.attach("rdptest_attach")
            start = ring.try_write(b"shared")
            assert reader.consume(start, 6) == b"shared"
            reader.close()
        finally:
            ring.close()
            ring.unlink()
