"""Unit tests for iterative scaling (Algorithm 1) and helpers."""

import pytest

from repro.core import PerformanceModel, ScalingOptimizer
from repro.core.scaling import saturation_ingress, suggest_initial_replication
from repro.errors import PlanError

from tests.conftest import build_pipeline, pipeline_profiles


@pytest.fixture()
def setup(tiny_machine):
    topology = build_pipeline()
    profiles = pipeline_profiles(topology)
    model = PerformanceModel(profiles, tiny_machine)
    return topology, model


class TestScaling:
    def test_scales_until_balanced(self, setup):
        topology, model = setup
        rate = saturation_ingress(topology, model)
        result = ScalingOptimizer(topology, model, rate).optimize()
        assert result.throughput > 0
        assert result.total_replicas > len(topology.components)
        assert result.placement.plan is not None

    def test_respects_replica_budget(self, setup, tiny_machine):
        topology, model = setup
        rate = saturation_ingress(topology, model)
        result = ScalingOptimizer(topology, model, rate).optimize()
        assert result.total_replicas <= tiny_machine.n_cores

    def test_custom_budget(self, setup):
        topology, model = setup
        result = ScalingOptimizer(
            topology, model, 1e7, max_total_replicas=6
        ).optimize()
        assert result.total_replicas <= 6

    def test_throughput_improves_over_iterations(self, setup):
        topology, model = setup
        rate = saturation_ingress(topology, model)
        result = ScalingOptimizer(topology, model, rate).optimize()
        feasible = [i.throughput for i in result.iterations if i.feasible]
        assert feasible[-1] >= feasible[0]
        assert result.throughput == pytest.approx(max(feasible))

    def test_bottleneck_components_grow(self, setup):
        topology, model = setup
        rate = saturation_ingress(topology, model)
        result = ScalingOptimizer(topology, model, rate).optimize()
        # The fan (heaviest per-tuple cost + selectivity 2 amplification
        # toward the sink) must end up more replicated than the spout.
        assert result.replication["fan"] > 1

    def test_low_rate_needs_no_scaling(self, setup):
        topology, model = setup
        result = ScalingOptimizer(topology, model, 1000.0).optimize()
        assert result.replication == {n: 1 for n in topology.components}
        assert result.throughput == pytest.approx(2000.0)

    def test_explicit_initial_replication(self, setup):
        topology, model = setup
        start = {"spout": 2, "stage": 2, "fan": 2, "sink": 2}
        result = ScalingOptimizer(topology, model, 1000.0).optimize(
            initial_replication=start
        )
        assert result.replication == start

    def test_max_iterations_respected(self, setup):
        topology, model = setup
        rate = saturation_ingress(topology, model)
        result = ScalingOptimizer(
            topology, model, rate, max_iterations=2
        ).optimize()
        # two growth iterations plus at most the rebalance record
        assert len(result.iterations) <= 3

    def test_invalid_compress_ratio(self, setup):
        topology, model = setup
        with pytest.raises(PlanError):
            ScalingOptimizer(topology, model, 1e6, compress_ratio=0)

    def test_compression_used(self, setup):
        topology, model = setup
        rate = saturation_ingress(topology, model)
        result = ScalingOptimizer(
            topology, model, rate, compress_ratio=4
        ).optimize()
        graph = result.placement.plan.graph
        assert any(t.weight > 1 for t in graph.tasks) or result.total_replicas <= len(
            topology.components
        )


class TestSaturationIngress:
    def test_positive_and_finite(self, setup):
        topology, model = setup
        rate = saturation_ingress(topology, model)
        assert 0 < rate < float("inf")

    def test_scales_with_machine_size(self, setup, tiny_machine):
        topology, model = setup
        profiles = model.profiles
        small_model = PerformanceModel(profiles, tiny_machine.subset(1))
        small = saturation_ingress(topology, small_model)
        large = saturation_ingress(topology, model)
        assert large == pytest.approx(4 * small, rel=1e-6)

    def test_headroom_scales_linearly(self, setup):
        topology, model = setup
        assert saturation_ingress(topology, model, headroom=0.5) == pytest.approx(
            saturation_ingress(topology, model, headroom=1.0) * 0.5
        )


class TestSuggestInitialReplication:
    def test_covers_all_components(self, setup):
        topology, model = setup
        suggestion = suggest_initial_replication(topology, model, 1e7, 16)
        assert set(suggestion) == set(topology.components)
        assert all(v >= 1 for v in suggestion.values())

    def test_respects_budget(self, setup):
        topology, model = setup
        suggestion = suggest_initial_replication(topology, model, 1e9, 16)
        assert sum(suggestion.values()) <= 16

    def test_heavy_components_get_more(self, setup):
        topology, model = setup
        suggestion = suggest_initial_replication(topology, model, 1e7, 64)
        assert suggestion["fan"] >= suggestion["spout"]


class TestGraphMemoization:
    def test_repeated_replication_reuses_graph(self, setup):
        topology, model = setup
        optimizer = ScalingOptimizer(topology, model, 1e6)
        replication = {n: 2 for n in topology.components}
        first = optimizer._build_graph(replication)
        builds = optimizer._graph_builds
        second = optimizer._build_graph(dict(replication))  # equal, new dict
        assert second is first
        assert optimizer._graph_builds == builds  # cache hit: no new build
        third = optimizer._build_graph({n: 3 for n in topology.components})
        assert third is not first
        assert optimizer._graph_builds == builds + 1

    def test_group_size_is_part_of_the_key(self, setup):
        topology, model = setup
        optimizer = ScalingOptimizer(topology, model, 1e6, compress_ratio=4)
        replication = {n: 4 for n in topology.components}
        coarse = optimizer._build_graph(replication)
        fine = optimizer._build_graph(replication, group_size=2)
        assert coarse is not fine
        assert optimizer._build_graph(replication) is coarse

    def test_optimize_builds_once_per_distinct_replication(self, setup):
        topology, model = setup
        optimizer = ScalingOptimizer(topology, model, 1e6)
        result = optimizer.optimize()
        distinct = len({
            frozenset(i.replication.items()) for i in result.iterations
        })
        # one build per distinct (replication, group-size); the fallback
        # finer-granularity pass may add at most one more per replication
        assert optimizer._graph_builds <= 2 * max(distinct, 1) + 2
