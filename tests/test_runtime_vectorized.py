"""Vectorized execution tests: kernel/scalar parity and fallback rules.

The columnar fast path must be invisible except for speed — every test
here runs the same workload with ``vectorized="on"`` and ``"off"`` and
demands identical sink contents and per-task counters, then checks the
``runtime.vectorized.*`` accounting for the documented fallback triggers
(non-columnar schemas, armed fault injection, ``off`` mode).
"""

from collections import Counter

import pytest

from repro.apps.spike_detection import build_spike_detection
from repro.apps.wordcount import build_wordcount
from repro.dsps.engine import LocalEngine
from repro.dsps.operators import Operator, Sink, Spout
from repro.dsps.topology import TopologyBuilder
from repro.dsps.tuples import DEFAULT_STREAM
from repro.errors import ExecutionError
from repro.metrics import MetricsRegistry
from repro.runtime import FaultPlan, ProcessPoolBackend
from repro.runtime.backends import resolve_backend
from repro.runtime.dataplane import VECTORIZED_MODES, columns_available

pytestmark = pytest.mark.skipif(
    not columns_available(), reason="numpy unavailable"
)

EVENTS = 200

REPLICATION = {
    "wc": {"spout": 1, "parser": 2, "splitter": 2, "counter": 2, "sink": 1},
    "sd": {
        "spout": 1,
        "parser": 1,
        "moving_average": 2,
        "spike_detector": 2,
        "sink": 1,
    },
}

BUILDERS = {"wc": build_wordcount, "sd": build_spike_detection}


def run_app(app, vectorized, backend="inline", registry=None, **engine_kw):
    topology = BUILDERS[app]()
    for spec in topology.components.values():
        operator = getattr(spec, "operator", None)
        if operator is not None and hasattr(operator, "keep_samples"):
            operator.keep_samples = 10**6
    engine = LocalEngine(
        topology,
        replication=REPLICATION[app],
        backend=backend,
        vectorized=vectorized if isinstance(backend, str) else None,
        registry=registry,
        queue_budget=4096,
        **engine_kw,
    )
    return engine.run(EVENTS)


def sink_multiset(result):
    return Counter(
        (component, item.stream, item.values)
        for component, sinks in result.sinks.items()
        for sink in sinks
        for item in sink.samples
    )


def task_counters(result):
    return {
        task_id: (
            stats.tuples_in,
            stats.tuples_out,
            dict(stats.out_by_stream),
            dict(stats.bytes_out_by_stream),
        )
        for task_id, stats in result.task_stats.items()
    }


def vectorized_counters(registry):
    return {
        key.rsplit(".", 1)[-1]: value
        for key, value in registry.snapshot()["counters"].items()
        if key.startswith("runtime.vectorized.")
    }


class TestParity:
    @pytest.mark.parametrize("app", ("wc", "sd"))
    def test_inline_on_off_identical(self, app):
        off = run_app(app, "off")
        on = run_app(app, "on")
        assert sink_multiset(off) == sink_multiset(on)
        assert task_counters(off) == task_counters(on)
        assert off.sink_received() == on.sink_received()

    @pytest.mark.parametrize("app", ("wc", "sd"))
    def test_process_on_off_identical(self, app):
        off = run_app(
            app,
            None,
            backend=ProcessPoolBackend(n_workers=2, vectorized="off"),
        )
        on = run_app(
            app,
            None,
            backend=ProcessPoolBackend(n_workers=2, vectorized="on"),
        )
        assert sink_multiset(off) == sink_multiset(on)
        assert task_counters(off) == task_counters(on)


class TestCounters:
    def test_process_backend_vectorizes_and_publishes(self):
        registry = MetricsRegistry()
        run_app(
            "wc",
            None,
            backend=ProcessPoolBackend(n_workers=2, vectorized="auto"),
            registry=registry,
        )
        counters = vectorized_counters(registry)
        assert counters["batches"] > 0
        assert counters["tuples"] > 0
        assert counters["fallbacks"] == 0

    def test_off_mode_counts_nothing(self):
        registry = MetricsRegistry()
        run_app(
            "wc",
            None,
            backend=ProcessPoolBackend(n_workers=2, vectorized="off"),
            registry=registry,
        )
        assert all(v == 0 for v in vectorized_counters(registry).values())

    def test_inline_per_tuple_histograms_fall_back(self):
        # Instrumented inline runs time every process() call, so kernels
        # are disabled and each drained batch at a kernel-capable
        # operator is a counted fallback.
        registry = MetricsRegistry()
        run_app("wc", "auto", registry=registry)
        counters = vectorized_counters(registry)
        assert counters["batches"] == 0
        assert counters["fallbacks"] > 0


class _DictSpout(Spout):
    """Emits tuples whose second field no columnar schema can hold."""

    def next_batch(self, max_tuples):
        for i in range(max_tuples):
            yield (f"w{i % 7}", {"i": i})


class _DropSecond(Operator):
    """Kernel-capable pass-through of the first field only."""

    declared_fields = {DEFAULT_STREAM: "s"}
    column_schemas = ("s",)

    def process(self, item):
        yield DEFAULT_STREAM, (item.values[0],)

    def process_columns(self, batch):
        from repro.runtime.dataplane import ColumnBatch

        yield ColumnBatch.build(DEFAULT_STREAM, "s", [batch.columns[0]])


class _ScalarSink(Sink):
    """Opts out of columnar intake by overriding ``process``."""

    def process(self, item):
        return super().process(item)


def _build_dict_topology():
    builder = TopologyBuilder("dicts")
    builder.set_spout("spout", _DictSpout())
    builder.add_operator("op", _DropSecond()).shuffle_from("spout")
    builder.add_sink("sink", _ScalarSink()).shuffle_from("op")
    return builder.build()


class TestFallbacks:
    def test_non_columnar_schema_counts_fallbacks(self):
        registry = MetricsRegistry()
        engine = LocalEngine(
            _build_dict_topology(),
            replication={"spout": 1, "op": 1, "sink": 1},
            backend=ProcessPoolBackend(n_workers=2, vectorized="auto"),
            registry=registry,
            queue_budget=4096,
        )
        result = engine.run(EVENTS)
        assert result.sink_received() == EVENTS
        counters = vectorized_counters(registry)
        assert counters["fallbacks"] > 0
        assert counters["batches"] == 0

    def test_armed_injector_counts_fallbacks(self):
        # A scheduled drop fault keeps per-tuple fault ticks live for the
        # whole run, so every batch at a kernel-capable operator falls
        # back even though the schema qualifies.
        registry = MetricsRegistry()
        result = run_app(
            "wc",
            None,
            backend=ProcessPoolBackend(n_workers=2, vectorized="auto"),
            registry=registry,
            fault_plan=FaultPlan(seed=5, kinds=("drop",), n_faults=1),
            recovery_policy="retry",
        )
        assert result.recovery is not None
        counters = vectorized_counters(registry)
        assert counters["batches"] == 0
        assert counters["fallbacks"] > 0


class TestModeValidation:
    def test_resolve_backend_rejects_unknown_mode(self):
        with pytest.raises(ExecutionError):
            resolve_backend("inline", vectorized="turbo")

    def test_backends_reject_unknown_mode(self):
        from repro.runtime.backends import InlineBackend

        with pytest.raises(ExecutionError):
            InlineBackend(vectorized="turbo")
        with pytest.raises(ExecutionError):
            ProcessPoolBackend(vectorized="turbo")

    def test_modes_are_documented_triple(self):
        assert VECTORIZED_MODES == ("auto", "on", "off")

    def test_cli_accepts_vectorized_flag(self, capsys):
        from repro.cli import main

        assert main(["run", "wc", "--events", "50", "--vectorized", "off"]) == 0
        capsys.readouterr()

    def test_cli_rejects_unknown_vectorized_mode(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run", "wc", "--vectorized", "turbo"])
        capsys.readouterr()
