"""Unit tests for the steady-state flow simulator."""

import pytest

from repro.core import PerformanceModel, collocated_plan
from repro.core.plan import ExecutionPlan
from repro.dsps import ExecutionGraph
from repro.errors import SimulationError
from repro.simulation import FlowSimulator, NO_PREFETCH, measure_throughput

from tests.conftest import build_pipeline, pipeline_profiles


@pytest.fixture()
def setup(tiny_machine):
    topology = build_pipeline()
    profiles = pipeline_profiles(topology)
    return topology, profiles, tiny_machine


class TestFlowBasics:
    def test_undersupplied_matches_model(self, setup):
        topology, profiles, machine = setup
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        plan = collocated_plan(graph)
        model_r = PerformanceModel(profiles, machine).evaluate(plan, 1000.0).throughput
        flow_r = measure_throughput(plan, profiles, machine, 1000.0)
        assert flow_r == pytest.approx(model_r, rel=1e-6)

    def test_no_prefetch_matches_model_remote(self, setup):
        """With the prefetch correction off, measured == estimated."""
        topology, profiles, machine = setup
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        plan = ExecutionPlan(graph=graph, placement={0: 0, 1: 1, 2: 2, 3: 3})
        model_r = PerformanceModel(profiles, machine).evaluate(plan, 1e12).throughput
        flow_r = measure_throughput(
            plan, profiles, machine, 1e12, prefetch=NO_PREFETCH
        )
        assert flow_r == pytest.approx(model_r, rel=1e-6)

    def test_prefetch_makes_measured_faster_than_estimate(self, setup):
        topology, profiles, machine = setup
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        plan = ExecutionPlan(graph=graph, placement={0: 0, 1: 1, 2: 2, 3: 3})
        model_r = PerformanceModel(profiles, machine).evaluate(plan, 1e12).throughput
        flow_r = measure_throughput(plan, profiles, machine, 1e12)
        assert flow_r > model_r

    def test_backpressure_chains_capacities(self, setup):
        topology, profiles, machine = setup
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        plan = collocated_plan(graph)
        result = FlowSimulator(profiles, machine).simulate(plan, 1e12)
        fan = graph.tasks_of("fan")[0]
        sink = graph.tasks_of("sink")[0]
        assert result.rates[sink.task_id].input_rate == pytest.approx(
            result.rates[fan.task_id].processed_rate * 2.0
        )

    def test_converges(self, setup):
        topology, profiles, machine = setup
        graph = ExecutionGraph(topology, {n: 2 for n in topology.components})
        plan = ExecutionPlan(
            graph=graph, placement={t.task_id: t.task_id % 4 for t in graph.tasks}
        )
        result = FlowSimulator(profiles, machine).simulate(plan, 1e7)
        assert result.converged
        assert result.iterations < 60


class TestContention:
    def test_core_oversubscription_slows_down(self, setup):
        """More replicas than cores on a socket time-share it (OS/FF/RR)."""
        topology, profiles, machine = setup
        graph = ExecutionGraph(topology, {n: 2 for n in topology.components})
        packed = collocated_plan(graph)  # 8 replicas on a 4-core socket
        spread_graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        clean = collocated_plan(spread_graph)  # 4 replicas on 4 cores
        r_packed = measure_throughput(packed, profiles, machine, 1e12)
        r_clean = measure_throughput(clean, profiles, machine, 1e12)
        # Doubling replicas without cores cannot double throughput.
        assert r_packed < 2 * r_clean * 0.9

    def test_oversubscribed_utilization_reported(self, setup):
        topology, profiles, machine = setup
        graph = ExecutionGraph(topology, {n: 2 for n in topology.components})
        plan = collocated_plan(graph)
        result = FlowSimulator(profiles, machine).simulate(plan, 1e12)
        assert result.cpu_utilization[0] > 0.9

    def test_interconnect_traffic_recorded(self, setup):
        topology, profiles, machine = setup
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        plan = ExecutionPlan(graph=graph, placement={0: 0, 1: 1, 2: 1, 3: 1})
        result = FlowSimulator(profiles, machine).simulate(plan, 1e6)
        assert result.interconnect_bytes[0, 1] > 0

    def test_noise_is_deterministic_by_seed(self, setup):
        topology, profiles, machine = setup
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        plan = collocated_plan(graph)
        a = measure_throughput(plan, profiles, machine, 1e12, noise_cv=0.05, seed=3)
        b = measure_throughput(plan, profiles, machine, 1e12, noise_cv=0.05, seed=3)
        c = measure_throughput(plan, profiles, machine, 1e12, noise_cv=0.05, seed=4)
        assert a == b
        assert a != c


class TestValidation:
    def test_incomplete_plan_rejected(self, setup):
        topology, profiles, machine = setup
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        from repro.core.plan import empty_plan

        with pytest.raises(SimulationError):
            FlowSimulator(profiles, machine).simulate(empty_plan(graph), 1e6)

    def test_bad_rate_rejected(self, setup):
        topology, profiles, machine = setup
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        with pytest.raises(SimulationError):
            FlowSimulator(profiles, machine).simulate(collocated_plan(graph), 0.0)

    def test_component_throughput_helper(self, setup):
        topology, profiles, machine = setup
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        result = FlowSimulator(profiles, machine).simulate(
            collocated_plan(graph), 1000.0
        )
        assert result.component_throughput("sink") == pytest.approx(
            result.throughput
        )
