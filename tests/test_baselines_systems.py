"""Unit tests for the Storm/Flink/StreamBox comparator models."""

import pytest

from repro.baselines import (
    FACTOR_STEPS,
    FLINK,
    MINUS_INSTR_FOOTPRINT,
    SIMPLE,
    STORM,
    StreamBoxModel,
)
from repro.core import BRISKSTREAM, PerformanceModel, collocated_plan
from repro.dsps import ExecutionGraph
from repro.simulation import measure_throughput

from tests.conftest import build_pipeline, pipeline_profiles


@pytest.fixture()
def setup(tiny_machine):
    topology = build_pipeline()
    profiles = pipeline_profiles(topology)
    return topology, profiles, tiny_machine


class TestSystemProfiles:
    def test_storm_slower_than_brisk(self, setup):
        topology, profiles, machine = setup
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        plan = collocated_plan(graph)
        r_brisk = measure_throughput(plan, profiles, machine, 1e12)
        r_storm = measure_throughput(plan, profiles, machine, 1e12, system=STORM)
        r_flink = measure_throughput(plan, profiles, machine, 1e12, system=FLINK)
        assert r_brisk > 3 * r_storm
        assert r_brisk > 3 * r_flink
        assert r_flink >= r_storm

    def test_factor_steps_cumulative_improvement(self, setup):
        """Figure 16: each added factor must not hurt."""
        topology, profiles, machine = setup
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        plan = collocated_plan(graph)
        values = [
            measure_throughput(plan, profiles, machine, 1e12, system=system)
            for _, system in FACTOR_STEPS[:3]
        ]
        assert values[0] < values[1] < values[2]

    def test_simple_equals_storm_cost_structure(self):
        assert SIMPLE.te_multiplier == STORM.te_multiplier
        assert SIMPLE.others_ns == STORM.others_ns

    def test_minus_instr_keeps_per_tuple_queueing(self):
        assert MINUS_INSTR_FOOTPRINT.te_multiplier == 1.0
        assert not MINUS_INSTR_FOOTPRINT.queue_amortized
        assert not MINUS_INSTR_FOOTPRINT.header_amortized

    def test_flink_multi_input_penalty(self):
        assert FLINK.multi_input_penalty_ns > 0
        assert BRISKSTREAM.multi_input_penalty_ns == 0
        assert STORM.multi_input_penalty_ns == 0

    def test_storm_buffers_dwarf_brisk(self):
        assert STORM.queue_capacity > 10 * BRISKSTREAM.queue_capacity


class TestStreamBox:
    @pytest.fixture()
    def models(self, setup):
        topology, profiles, machine = setup
        ooo = StreamBoxModel(topology, profiles, machine, ordered=False)
        ordered = StreamBoxModel(topology, profiles, machine, ordered=True)
        return ooo, ordered

    def test_ordered_slower_than_out_of_order(self, models):
        ooo, ordered = models
        assert ordered.throughput(8).throughput < ooo.throughput(8).throughput

    def test_scheduler_binds_at_scale(self, models, tiny_machine):
        ooo, _ = models
        big = ooo.throughput(tiny_machine.n_cores)
        assert big.scheduler_bound or big.throughput > 0

    def test_scaling_flattens(self, setup):
        """Figure 11's shape: growth stalls once the lock dominates."""
        topology, profiles, machine = setup
        ooo = StreamBoxModel(topology, profiles, machine, ordered=False)
        points = ooo.sweep([1, 2, 4, 8, 16])
        values = [p.throughput for p in points]
        early_gain = values[1] / values[0]
        late_gain = values[-1] / values[-2]
        assert early_gain > late_gain

    def test_cores_clamped_to_machine(self, models, tiny_machine):
        ooo, _ = models
        assert ooo.throughput(10_000).cores == tiny_machine.n_cores

    def test_sweep_matches_throughput(self, models):
        ooo, _ = models
        sweep = ooo.sweep([2, 4])
        assert sweep[0].throughput == ooo.throughput(2).throughput

    def test_invalid_cores(self, models):
        from repro.errors import SimulationError

        ooo, _ = models
        with pytest.raises(SimulationError):
            ooo.throughput(0)
