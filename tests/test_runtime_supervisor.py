"""Unit tests for the supervisor's policy machinery.

The chaos suite (test_runtime_faults.py) exercises recovery end-to-end;
these tests pin the supervisor's control logic in isolation using a stub
backend that fails on demand — backoff growth and bounding, restart
exhaustion, report contents, duplicate accounting.
"""

import pytest

from repro.apps import load_application
from repro.dsps import LocalEngine
from repro.errors import ExecutionError, WorkerCrashError
from repro.metrics import MetricsRegistry
from repro.runtime import (
    ExecutorBackend,
    RunResult,
    Supervisor,
)


class _StubSink:
    def __init__(self, received):
        self.received = received


def _result(sink_received=0, partial=False, fault_summary=None):
    return RunResult(
        topology_name="stub",
        events_ingested=100,
        task_stats={},
        sinks={"sink": [_StubSink(sink_received)]},
        fault_summary=fault_summary,
        partial=partial,
    )


class FlakyBackend(ExecutorBackend):
    """Fails ``failures`` times, then succeeds."""

    name = "flaky"

    def __init__(self, failures, error_factory=None):
        self.failures = failures
        self.calls = 0
        self.error_factory = error_factory or (
            lambda attempt: WorkerCrashError(
                f"boom on attempt {attempt}",
                partial_result=_result(sink_received=10, partial=True),
            )
        )

    def execute(self, spec, max_events, registry=None, *, injector=None):
        attempt = self.calls
        self.calls += 1
        if attempt < self.failures:
            raise self.error_factory(attempt)
        return _result(sink_received=100)


class TestValidation:
    def test_unknown_policy(self):
        with pytest.raises(ExecutionError, match="unknown recovery policy"):
            Supervisor(FlakyBackend(0), policy="reboot")

    def test_negative_restarts(self):
        with pytest.raises(ExecutionError, match="max_restarts"):
            Supervisor(FlakyBackend(0), policy="retry", max_restarts=-1)

    def test_negative_backoff(self):
        with pytest.raises(ExecutionError, match="backoff"):
            Supervisor(FlakyBackend(0), policy="retry", backoff_base_s=-0.1)

    def test_degrade_needs_context(self):
        with pytest.raises(ExecutionError, match="DegradeContext"):
            Supervisor(FlakyBackend(0), policy="degrade")

    def test_engine_rejects_bad_policy(self):
        topology, _ = load_application("wc")
        with pytest.raises(ExecutionError, match="unknown recovery policy"):
            LocalEngine(topology, recovery_policy="reboot")


class TestRetryLoop:
    def test_backoff_grows_exponentially_and_caps(self):
        sleeps = []
        supervisor = Supervisor(
            FlakyBackend(4),
            policy="retry",
            max_restarts=5,
            backoff_base_s=0.1,
            backoff_max_s=0.35,
            backoff_jitter=False,
            sleep=sleeps.append,
        )
        result = supervisor.execute(None, 100)
        assert result.recovery.completed
        assert result.recovery.attempts == 5
        assert result.recovery.restarts == 4
        assert sleeps == [0.1, 0.2, 0.35, 0.35]  # doubled, then capped

    def test_jittered_backoff_is_seeded_deterministic(self):
        def run(seed):
            sleeps = []
            Supervisor(
                FlakyBackend(4),
                policy="retry",
                max_restarts=5,
                backoff_base_s=0.1,
                backoff_max_s=0.35,
                backoff_seed=seed,
                sleep=sleeps.append,
            ).execute(None, 100)
            return sleeps

        first, again = run(7), run(7)
        assert first == again  # same seed -> same backoff schedule
        assert len(first) == 4
        # Every sleep respects the configured bounds, and the decorrelated
        # walk stays within [base, 3 * prev].
        prev = 0.1
        for backoff in first:
            assert 0.1 <= backoff <= 0.35
            assert backoff <= max(0.1, prev * 3)
            prev = backoff
        # Different seeds desynchronize (the thundering-herd property):
        # at least one step of the schedule must differ.
        assert run(8) != first

    def test_restart_exhaustion_reraises_with_report(self):
        supervisor = Supervisor(
            FlakyBackend(10),
            policy="retry",
            max_restarts=2,
            backoff_base_s=0.0,
            sleep=lambda s: None,
        )
        with pytest.raises(WorkerCrashError) as excinfo:
            supervisor.execute(None, 100)
        recovery = excinfo.value.recovery
        assert recovery is not None
        assert recovery.completed is False
        assert recovery.attempts == 3  # initial + 2 restarts
        assert recovery.restarts == 2
        assert [e.kind for e in recovery.events].count("restart") == 2
        assert recovery.events[-1].kind == "failed"

    def test_duplicates_accumulate_across_failed_attempts(self):
        supervisor = Supervisor(
            FlakyBackend(3),
            policy="retry",
            max_restarts=3,
            backoff_base_s=0.0,
            sleep=lambda s: None,
        )
        result = supervisor.execute(None, 100)
        # Each failed attempt had delivered 10 tuples to sinks.
        assert result.recovery.duplicate_deliveries == 30

    def test_fail_fast_never_restarts(self):
        backend = FlakyBackend(1)
        supervisor = Supervisor(backend, policy="fail-fast")
        with pytest.raises(WorkerCrashError):
            supervisor.execute(None, 100)
        assert backend.calls == 1

    def test_timeline_order(self):
        supervisor = Supervisor(
            FlakyBackend(1),
            policy="retry",
            backoff_base_s=0.0,
            sleep=lambda s: None,
        )
        result = supervisor.execute(None, 100)
        kinds = [e.kind for e in result.recovery.events]
        assert kinds == ["fault-detected", "restart", "completed"]
        elapsed = [e.elapsed_s for e in result.recovery.events]
        assert elapsed == sorted(elapsed)  # monotonic timeline

    def test_metrics_published(self):
        registry = MetricsRegistry()
        supervisor = Supervisor(
            FlakyBackend(2),
            policy="retry",
            backoff_base_s=0.0,
            sleep=lambda s: None,
        )
        supervisor.execute(None, 100, registry)
        gauges = registry.snapshot()["gauges"]
        assert gauges["runtime.recovery.attempts"] == 3
        assert gauges["runtime.recovery.restarts"] == 2
        assert gauges["runtime.recovery.completed"] == 1.0
        assert gauges["runtime.recovery.duplicate_deliveries"] == 20


class TestDropLossHandling:
    def test_loss_on_final_attempt_fails_fast(self):
        class LossyBackend(ExecutorBackend):
            name = "lossy"

            def execute(self, spec, max_events, registry=None, *, injector=None):
                return _result(
                    sink_received=90,
                    fault_summary={"dropped_tuples": 64.0, "faults_fired": 1.0},
                )

        supervisor = Supervisor(LossyBackend(), policy="fail-fast")
        with pytest.raises(ExecutionError, match="message loss"):
            supervisor.execute(None, 100)

    def test_loss_retries_until_clean(self):
        class EventuallyCleanBackend(ExecutorBackend):
            name = "eventually-clean"

            def __init__(self):
                self.calls = 0

            def execute(self, spec, max_events, registry=None, *, injector=None):
                self.calls += 1
                if self.calls == 1:
                    return _result(
                        sink_received=90,
                        fault_summary={"dropped_tuples": 64.0},
                    )
                return _result(sink_received=100)

        backend = EventuallyCleanBackend()
        supervisor = Supervisor(
            backend, policy="retry", backoff_base_s=0.0, sleep=lambda s: None
        )
        result = supervisor.execute(None, 100)
        assert backend.calls == 2
        assert result.recovery.completed
        # The lossy attempt's sink deliveries count as duplicates.
        assert result.recovery.duplicate_deliveries == 90
