"""Functional tests for Fraud Detection and Spike Detection."""

import pytest

from repro.apps import build_fraud_detection, build_spike_detection
from repro.apps.fraud_detection import MarkovPredictor
from repro.apps.spike_detection import MovingAverage, SpikeDetector
from repro.dsps import LocalEngine, StreamTuple


class TestFraudDetection:
    def test_topology_shape(self):
        topology = build_fraud_detection()
        assert topology.topological_order() == ["spout", "parser", "predictor", "sink"]

    def test_selectivity_one_everywhere(self):
        """Appendix B: a signal reaches the sink for every input."""
        run = LocalEngine(build_fraud_detection()).run(400)
        assert run.selectivity("parser") == pytest.approx(1.0)
        assert run.selectivity("predictor") == pytest.approx(1.0)
        assert run.sink_received() == 400

    def test_predictor_scores_unusual_traces_higher(self):
        predictor = MarkovPredictor()
        normal = list(
            predictor.process(StreamTuple(values=("acc", "low,low,mid,low,low")))
        )[0][1]
        shady = list(
            predictor.process(StreamTuple(values=("acc", "max,high,max,high,max")))
        )[0][1]
        assert shady[1] > normal[1]
        assert shady[2] and not normal[2]

    def test_fraud_detected_on_workload(self):
        run = LocalEngine(build_fraud_detection(fraud_fraction=0.2)).run(500)
        sink = run.sinks["sink"][0]
        assert 0 < sink.fraud_count < 500

    def test_fields_grouping_keeps_entity_on_one_replica(self):
        topology = build_fraud_detection()
        engine = LocalEngine(
            topology,
            replication={"spout": 1, "parser": 2, "predictor": 4, "sink": 1},
        )
        run = engine.run(300)
        assert run.sink_received() == 300


class TestSpikeDetection:
    def test_topology_shape(self):
        topology = build_spike_detection()
        assert topology.topological_order() == [
            "spout",
            "parser",
            "moving_average",
            "spike_detector",
            "sink",
        ]

    def test_selectivity_one_everywhere(self):
        run = LocalEngine(build_spike_detection()).run(400)
        for component in ("parser", "moving_average", "spike_detector"):
            assert run.selectivity(component) == pytest.approx(1.0)
        assert run.sink_received() == 400

    def test_moving_average_windows(self):
        op = MovingAverage(window=3)
        values = [10.0, 20.0, 30.0, 40.0]
        averages = []
        for i, v in enumerate(values):
            out = list(op.process(StreamTuple(values=("dev", v, i))))
            averages.append(out[0][1][1])
        assert averages == [10.0, 15.0, 20.0, (20.0 + 30 + 40) / 3]

    def test_spike_detector_flags_outliers(self):
        detector = SpikeDetector(threshold=1.5)
        calm = list(detector.process(StreamTuple(values=("dev", 10.0, 10.0))))
        spike = list(detector.process(StreamTuple(values=("dev", 10.0, 100.0))))
        assert not calm[0][1][3]
        assert spike[0][1][3]
        assert detector.spikes == 1

    def test_spikes_found_on_workload(self):
        run = LocalEngine(build_spike_detection(spike_fraction=0.05)).run(2000)
        sink = run.sinks["sink"][0]
        assert sink.spike_count > 0
