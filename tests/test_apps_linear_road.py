"""Functional tests for the Linear Road application."""

import pytest

from repro.apps import build_linear_road
from repro.apps.linear_road import (
    AccidentDetector,
    BALANCE_STREAM,
    DAILY_STREAM,
    DETECT_STREAM,
    Dispatcher,
    POSITION_STREAM,
    TollNotifier,
    TOLL_STREAM,
)
from repro.dsps import LocalEngine, StreamTuple


class TestDispatcher:
    def test_routes_by_record_type(self):
        dispatcher = Dispatcher()
        position = list(
            dispatcher.process(
                StreamTuple(values=(0, 10, 7, 55, 1, 2, 0, 3, 15900, 0, 0))
            )
        )
        balance = list(
            dispatcher.process(
                StreamTuple(values=(2, 11, 7, 0, 0, 0, 0, 0, 0, 42, 0))
            )
        )
        daily = list(
            dispatcher.process(
                StreamTuple(values=(3, 12, 7, 0, 0, 0, 0, 0, 0, 43, 5))
            )
        )
        assert position[0][0] == POSITION_STREAM
        assert balance[0][0] == BALANCE_STREAM
        assert daily[0][0] == DAILY_STREAM


class TestAccidentDetector:
    def test_four_stopped_reports_trigger(self):
        detector = AccidentDetector()
        report = (100, 9, 0, 1, 2, 0, 3, 15900)
        emissions = []
        for _ in range(4):
            emissions.extend(
                detector.process(StreamTuple(values=report, stream=POSITION_STREAM))
            )
        assert len(emissions) == 1
        assert emissions[0][0] == DETECT_STREAM
        assert detector.detected == 1

    def test_moving_vehicle_never_triggers(self):
        detector = AccidentDetector()
        for position in range(0, 400, 100):
            report = (100, 9, 60, 1, 2, 0, 3, position)
            assert not list(
                detector.process(StreamTuple(values=report, stream=POSITION_STREAM))
            )

    def test_no_duplicate_alert_for_same_accident(self):
        detector = AccidentDetector()
        report = (100, 9, 0, 1, 2, 0, 3, 15900)
        total = []
        for _ in range(10):
            total.extend(
                detector.process(StreamTuple(values=report, stream=POSITION_STREAM))
            )
        assert len(total) == 1


class TestTollNotifier:
    def test_congestion_charges_toll(self):
        notifier = TollNotifier()
        key = (1, 0, 3)
        notifier.process(
            StreamTuple(values=(*key, 20.0), stream="las_stream")
        ).__iter__().__next__()
        list(notifier.process(StreamTuple(values=(*key, 80), stream="counts_stream")))
        out = list(
            notifier.process(
                StreamTuple(
                    values=(100, 9, 30, 1, 2, 0, 3, 15900), stream=POSITION_STREAM
                )
            )
        )
        assert out[0][0] == TOLL_STREAM
        assert out[0][1][1] > 0  # toll charged
        assert notifier.tolls_charged == 1

    def test_free_flow_is_toll_free(self):
        notifier = TollNotifier()
        out = list(
            notifier.process(
                StreamTuple(
                    values=(100, 9, 80, 1, 2, 0, 3, 15900), stream=POSITION_STREAM
                )
            )
        )
        assert out[0][1][1] == 0

    def test_accident_suspends_tolls(self):
        notifier = TollNotifier()
        key = (1, 0, 3)
        list(notifier.process(StreamTuple(values=(*key, 20.0), stream="las_stream")))
        list(notifier.process(StreamTuple(values=(*key, 80), stream="counts_stream")))
        list(notifier.process(StreamTuple(values=(*key, 100), stream=DETECT_STREAM)))
        out = list(
            notifier.process(
                StreamTuple(
                    values=(100, 9, 30, 1, 2, 0, 3, 15900), stream=POSITION_STREAM
                )
            )
        )
        assert out[0][1][1] == 0


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def run(self):
        return LocalEngine(build_linear_road()).run(3000)

    def test_dispatcher_selectivities_match_table8(self, run):
        assert run.selectivity("dispatcher", POSITION_STREAM) > 0.97
        assert run.selectivity("dispatcher", BALANCE_STREAM) < 0.02
        assert run.selectivity("dispatcher", DAILY_STREAM) < 0.02

    def test_unit_selectivity_operators(self, run):
        for component in ("avg_speed", "las_avg_speed", "count_vehicles"):
            assert run.selectivity(component) == pytest.approx(1.0)

    def test_accident_streams_are_rare(self, run):
        assert run.selectivity("accident_detect") < 0.05
        assert run.selectivity("accident_notify") < 0.2

    def test_toll_notifier_answers_every_input(self, run):
        # ~1.0: the accident-stream inputs (selectivity 0) are a sliver.
        assert run.selectivity("toll_notify") == pytest.approx(1.0, abs=0.01)

    def test_sink_receives_several_streams(self, run):
        # toll notifications dominate (3 inputs x sel 1 on ~99% of events)
        assert run.sink_received() > 2.5 * run.events_ingested

    def test_topology_has_eleven_components_plus_sink(self):
        topology = build_linear_road()
        assert len(topology) == 12
        assert set(topology.sinks) == {"sink"}

    def test_replicated_run_consistent(self):
        replication = {
            "spout": 1,
            "parser": 2,
            "dispatcher": 2,
            "avg_speed": 3,
            "las_avg_speed": 2,
            "accident_detect": 2,
            "count_vehicles": 3,
            "accident_notify": 2,
            "toll_notify": 4,
            "daily_expenditure": 1,
            "account_balance": 1,
            "sink": 2,
        }
        run = LocalEngine(build_linear_road(), replication=replication).run(1500)
        assert run.selectivity("toll_notify") == pytest.approx(1.0, abs=0.05)
        assert run.sink_received() > 2.5 * run.events_ingested
