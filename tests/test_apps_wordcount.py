"""Functional tests for the Word Count application."""

import pytest

from repro.apps import build_wordcount
from repro.apps.wordcount import Counter, Parser, Splitter
from repro.dsps import LocalEngine, StreamTuple


class TestOperators:
    def test_parser_drops_empty(self):
        parser = Parser()
        assert list(parser.process(StreamTuple(values=("",)))) == []
        assert list(parser.process(StreamTuple(values=("a b",)))) == [
            ("default", ("a b",))
        ]

    def test_splitter_emits_each_word(self):
        splitter = Splitter()
        out = list(splitter.process(StreamTuple(values=("a boy and a girl",))))
        assert [v[0] for _, v in out] == ["a", "boy", "and", "a", "girl"]

    def test_counter_tracks_occurrences(self):
        counter = Counter()
        first = list(counter.process(StreamTuple(values=("a",))))
        second = list(counter.process(StreamTuple(values=("a",))))
        assert first == [("default", ("a", 1))]
        assert second == [("default", ("a", 2))]


class TestTopology:
    def test_structure_matches_figure2(self):
        topology = build_wordcount()
        assert topology.topological_order() == [
            "spout",
            "parser",
            "splitter",
            "counter",
            "sink",
        ]
        assert topology.sinks == ["sink"]

    def test_selectivities_match_paper(self):
        """Parser selectivity 1, splitter 10 on the testing workload."""
        topology = build_wordcount()
        run = LocalEngine(topology).run(500)
        assert run.selectivity("parser") == pytest.approx(1.0)
        assert run.selectivity("splitter") == pytest.approx(10.0)
        assert run.selectivity("counter") == pytest.approx(1.0)

    def test_sink_sees_every_word(self):
        topology = build_wordcount()
        run = LocalEngine(topology).run(200)
        assert run.sink_received() == 200 * 10

    def test_counts_are_consistent(self):
        """Total counted occurrences equal words emitted."""
        topology = build_wordcount()
        engine = LocalEngine(topology, replication={
            "spout": 1, "parser": 2, "splitter": 2, "counter": 4, "sink": 1
        })
        run = engine.run(300)
        assert run.component_out("counter") == run.component_out("splitter")

    def test_empty_sentences_dropped(self):
        topology = build_wordcount(empty_fraction=0.3)
        run = LocalEngine(topology).run(500)
        assert run.selectivity("parser") < 1.0
        assert run.sink_received() < 5000
