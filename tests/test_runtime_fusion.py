"""Runtime operator-chain fusion + adaptive batch sizing suite.

Fusion's whole contract is *semantic invisibility*: a fused run must be
bit-identical to the unfused run — same per-task tuple counts, same sink
multisets — while skipping the intra-chain queues entirely.  The parity
matrix here drives every example application through both backends, both
kernel modes and both fusion settings against one unfused scalar inline
baseline per app.  Around the matrix: unit tests for the chain planner
(eligibility, socket discipline, the ``on``-mode failure, live refit),
the AIMD batch-size controller, the spec-level batch validation, and
fault recovery with a crash landing *inside* a fused chain.
"""

from collections import Counter as Multiset
from dataclasses import replace as dc_replace

import pytest

from repro.apps import load_application
from repro.dsps import LocalEngine
from repro.errors import ExecutionError, PlanError
from repro.metrics import MetricsRegistry
from repro.runtime import (
    AdaptiveBatchConfig,
    AdaptiveBatchController,
    FaultPlan,
    FusionConfig,
    ProcessPoolBackend,
    apply_edge_batches,
    as_fusion_config,
    chain_map,
    columns_available,
    lower_graph,
    plan_fusion,
    refit_fusion,
    validate_fuse,
)
from repro.dsps.queues import QueueStats

EVENTS = 300
APPS = ("wc", "sd", "fd", "lr")

#: Expected fused chains per app at replication 1 (task ids, head first):
#: every exclusive operator->operator pair on one socket collapses.
EXPECTED_CHAINS = {
    "wc": ((1, 2, 3),),
    "sd": ((1, 2, 3),),
    "fd": ((1, 2),),
    "lr": ((1, 2), (3, 8)),
}

needs_numpy = pytest.mark.skipif(
    not columns_available(), reason="numpy not importable"
)


def build_engine(app, *, fuse=None, backend="inline", vectorized="off", **kwargs):
    topology, _profiles = load_application(app)
    topology.component("sink").template.keep_samples = 10**6
    replication = {name: 1 for name in topology.components}
    if backend == "process":
        # Instance backends pass through resolve_backend untouched, so
        # the adaptive config must land on the instance itself (the CLI
        # watchdog path does the same).
        backend = ProcessPoolBackend(
            n_workers=2,
            ordered=(app == "lr"),
            vectorized=vectorized,
            batching=(
                AdaptiveBatchConfig() if kwargs.get("adaptive_batch") else None
            ),
        )
        vectorized = None
    return LocalEngine(
        topology,
        replication=replication,
        backend=backend,
        vectorized=vectorized,
        fuse=fuse,
        **kwargs,
    )


def sink_multiset(result):
    return Multiset(
        tuple(item.values)
        for sinks in result.sinks.values()
        for sink in sinks
        for item in sink.samples
    )


def task_counts(result):
    return {
        task_id: (stats.tuples_in, stats.tuples_out)
        for task_id, stats in result.task_stats.items()
    }


def assert_identical(reference, candidate):
    assert candidate.events_ingested == reference.events_ingested
    assert task_counts(candidate) == task_counts(reference)
    assert sink_multiset(candidate) == sink_multiset(reference)


@pytest.fixture(scope="module")
def baselines():
    """Unfused scalar inline runs: the semantics every config must hit."""
    return {app: build_engine(app).run(EVENTS) for app in APPS}


def wc_spec(**kwargs):
    topology, _profiles = load_application("wc")
    replication = {name: 1 for name in topology.components}
    from repro.dsps.graph import ExecutionGraph

    graph = ExecutionGraph(topology, replication, group_size=1)
    return lower_graph(topology, graph, **kwargs)


# ---------------------------------------------------------------------------
# Chain planning
# ---------------------------------------------------------------------------
class TestPlanFusion:
    def test_modes_validated(self):
        assert validate_fuse("auto") == "auto"
        with pytest.raises(PlanError, match="unknown fuse mode"):
            validate_fuse("maybe")
        with pytest.raises(PlanError, match="unknown fuse mode"):
            FusionConfig(mode="maybe")
        with pytest.raises(PlanError, match="min_benefit"):
            FusionConfig(min_benefit=-0.1)

    def test_as_fusion_config_coercion(self):
        assert as_fusion_config(None).mode == "off"
        assert as_fusion_config("on").mode == "on"
        config = FusionConfig(mode="auto")
        assert as_fusion_config(config) is config

    def test_off_mode_plans_no_chains(self):
        spec = plan_fusion(wc_spec(), FusionConfig(mode="off"))
        assert spec.fusion == ()
        assert spec.fuse_mode == "off"
        assert spec.fused_member_ids == frozenset()

    @pytest.mark.parametrize("app", APPS)
    def test_expected_chains_at_replication_one(self, app):
        engine = build_engine(app, fuse="auto")
        assert engine.spec.fusion == EXPECTED_CHAINS[app]
        heads = chain_map(engine.spec)
        for chain in engine.spec.fusion:
            assert heads[chain[0]] == chain
            assert all(tid in engine.spec.fused_member_ids for tid in chain[1:])

    def test_spout_and_sink_edges_never_fuse(self):
        spec = plan_fusion(wc_spec(), FusionConfig(mode="on"))
        spout = next(rt.task_id for rt in spec.tasks if rt.is_spout)
        sink = next(rt.task_id for rt in spec.tasks if rt.is_sink)
        for chain in spec.fusion:
            assert spout not in chain
            assert sink not in chain

    def test_replicated_edges_are_ineligible(self):
        # Replication breaks 1:1 exclusivity: parser feeds two splitter
        # replicas, each splitter feeds two counters, so only the single
        # remaining exclusive pair (if any) may fuse.
        topology, _profiles = load_application("wc")
        engine = LocalEngine(
            topology,
            replication={
                "spout": 1,
                "parser": 1,
                "splitter": 2,
                "counter": 2,
                "sink": 1,
            },
            fuse="auto",
        )
        for chain in engine.spec.fusion:
            for tid in chain:
                rt = next(t for t in engine.spec.tasks if t.task_id == tid)
                assert rt.component in ("parser",) or len(chain) == 1
        assert engine.spec.fusion == ()  # parser->splitter fans out too

    def test_cross_socket_skipped_under_auto(self):
        spec = wc_spec()
        tasks = tuple(
            dc_replace(rt, socket=1 if rt.component == "splitter" else 0)
            for rt in spec.tasks
        )
        spec = dc_replace(spec, tasks=tasks)
        fused = plan_fusion(spec, FusionConfig(mode="auto"))
        # parser(1)->splitter(2) and splitter(2)->counter(3) both cross
        # sockets now; nothing is left to fuse.
        assert fused.fusion == ()

    def test_cross_socket_fails_under_on(self):
        spec = wc_spec()
        tasks = tuple(
            dc_replace(rt, socket=1 if rt.component == "splitter" else 0)
            for rt in spec.tasks
        )
        spec = dc_replace(spec, tasks=tasks)
        with pytest.raises(PlanError, match="crosses sockets"):
            plan_fusion(spec, FusionConfig(mode="on"))

    def test_profitability_bar_applies_under_auto(self):
        # An impossible benefit bar rejects every candidate.
        topology, profiles = load_application("wc")
        from repro.hardware import server_a

        engine_spec = plan_fusion(
            wc_spec(),
            FusionConfig(
                mode="auto",
                profiles=profiles,
                machine=server_a(4),
                min_benefit=float("inf"),
            ),
        )
        assert engine_spec.fusion == ()

    def test_refit_dissolves_and_revives_chains(self):
        spec = plan_fusion(wc_spec(), FusionConfig(mode="on"))
        assert spec.fusion == ((1, 2, 3),)
        moved = dc_replace(
            spec,
            tasks=tuple(
                dc_replace(rt, socket=1 if rt.component == "counter" else 0)
                for rt in spec.tasks
            ),
        )
        refit = refit_fusion(moved)
        assert refit.fusion == ((1, 2),)  # counter left the socket
        assert refit.fuse_mode == "on"  # mode survives the refit
        back = refit_fusion(
            dc_replace(
                refit,
                tasks=tuple(dc_replace(rt, socket=0) for rt in refit.tasks),
            )
        )
        assert back.fusion == ((1, 2, 3),)

    def test_refit_is_noop_when_off(self):
        spec = wc_spec()
        assert refit_fusion(spec) is spec


# ---------------------------------------------------------------------------
# Adaptive batch sizing
# ---------------------------------------------------------------------------
class TestAdaptiveBatchConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_batch": 0},
            {"max_batch": 4, "min_batch": 8},
            {"increase": 0},
            {"decrease": 0.0},
            {"decrease": 1.0},
            {"fill_target": 0.0},
            {"fill_target": 1.5},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(PlanError):
            AdaptiveBatchConfig(**kwargs)


class TestAdaptiveController:
    def controller(self, **kwargs):
        spec = wc_spec(queue_budget=2048)
        return spec, AdaptiveBatchController(
            spec, AdaptiveBatchConfig(**kwargs)
        )

    def test_decrease_on_blocked_edge(self):
        spec, ctl = self.controller()
        key = next(iter(spec.queue_capacity))
        changed = ctl.observe_window({key: (10, 640, 3)})
        assert changed == {key: 32}  # 64 * 0.5
        assert ctl.decreases == 1

    def test_decrease_on_external_pressure(self):
        spec, ctl = self.controller()
        key = next(iter(spec.queue_capacity))
        changed = ctl.observe_window(
            {key: (10, 640, 0)}, pressure_keys={key}
        )
        assert changed == {key: 32}

    def test_increase_only_when_batches_run_full(self):
        spec, ctl = self.controller()
        key = next(iter(spec.queue_capacity))
        assert ctl.observe_window({key: (10, 320, 0)}) == {}  # fill 0.5
        assert ctl.observe_window({key: (10, 640, 0)}) == {key: 96}
        assert ctl.increases == 1

    def test_idle_edges_are_skipped(self):
        spec, ctl = self.controller()
        key = next(iter(spec.queue_capacity))
        assert ctl.observe_window({key: (0, 0, 0)}) == {}
        assert ctl.adjustments == 0

    def test_clamped_to_bounds_and_capacity(self):
        spec, ctl = self.controller(min_batch=48, max_batch=80)
        key = next(iter(spec.queue_capacity))
        assert ctl.observe_window({key: (10, 640, 1)}) == {key: 48}
        ctl.sizes[key] = 80
        assert ctl.observe_window({key: (10, 800, 0)}) == {}  # at max
        capped = AdaptiveBatchController(
            wc_spec(batch_size=8, queue_capacity=16), AdaptiveBatchConfig()
        )
        key2 = next(iter(capped.capacity))
        capped.sizes[key2] = 8
        assert capped.observe_window({key2: (10, 80, 0)}) == {key2: 16}

    def test_observe_differences_cumulative_stats(self):
        spec, ctl = self.controller()
        key = next(iter(spec.queue_capacity))
        stats = QueueStats()
        stats.enqueued_batches, stats.enqueued_tuples = 10, 640
        assert ctl.observe({key: stats}) == {key: 96}
        # Same cumulative numbers again = an idle window.
        assert ctl.observe({key: stats}) == {}
        assert ctl.report()["adjustments"] == 1


class TestApplyEdgeBatches:
    def test_valid_sizes_apply(self):
        spec = wc_spec(queue_budget=2048)
        key = next(iter(spec.queue_capacity))
        updated = apply_edge_batches(spec, {key: 128})
        assert updated.batch_for(key) == 128
        assert spec.batch_for(key) == 64  # original untouched

    def test_unknown_edge_rejected(self):
        spec = wc_spec(queue_budget=2048)
        with pytest.raises(PlanError, match="unknown edge"):
            apply_edge_batches(spec, {(97, 98): 32})

    def test_nonpositive_size_rejected(self):
        spec = wc_spec(queue_budget=2048)
        key = next(iter(spec.queue_capacity))
        with pytest.raises(PlanError, match=">= 1"):
            apply_edge_batches(spec, {key: 0})

    def test_size_beyond_capacity_rejected(self):
        spec = wc_spec(queue_capacity=100)
        key = next(iter(spec.queue_capacity))
        with pytest.raises(PlanError, match="capacity"):
            apply_edge_batches(spec, {key: 101})


# ---------------------------------------------------------------------------
# Engine surface
# ---------------------------------------------------------------------------
class TestEngineValidation:
    def test_batch_size_must_be_positive(self):
        with pytest.raises(ExecutionError, match="batch_size"):
            build_engine("wc", batch_size=0)

    def test_adaptive_requires_epoch_barriers(self):
        with pytest.raises(ExecutionError, match="epoch"):
            build_engine("wc", adaptive_batch=True)

    def test_unknown_fuse_mode_rejected(self):
        with pytest.raises(PlanError, match="unknown fuse mode"):
            build_engine("wc", fuse="sometimes")

    def test_engine_default_is_unfused(self):
        assert build_engine("wc").spec.fusion == ()


# ---------------------------------------------------------------------------
# The parity matrix
# ---------------------------------------------------------------------------
class TestFusionParity:
    """Fused runs are bit-identical to the unfused scalar baseline."""

    @pytest.mark.parametrize("app", APPS)
    @pytest.mark.parametrize("backend", ["inline", "process"])
    @pytest.mark.parametrize(
        "vectorized",
        ["off", pytest.param("on", marks=needs_numpy)],
    )
    def test_fused_matches_unfused_baseline(
        self, baselines, app, backend, vectorized
    ):
        engine = build_engine(
            app, fuse="auto", backend=backend, vectorized=vectorized
        )
        assert engine.spec.fusion == EXPECTED_CHAINS[app]
        assert_identical(baselines[app], engine.run(EVENTS))

    @pytest.mark.parametrize("app", APPS)
    @pytest.mark.parametrize("backend", ["inline", "process"])
    def test_unfused_matches_baseline(self, baselines, app, backend):
        engine = build_engine(app, fuse="off", backend=backend)
        assert engine.spec.fusion == ()
        assert_identical(baselines[app], engine.run(EVENTS))

    def test_fusion_survives_epoch_barriers(self, baselines):
        result = build_engine(
            "wc", fuse="auto", epoch_interval=100, queue_budget=2048
        ).run(EVENTS)
        assert_identical(baselines["wc"], result)
        assert result.epochs.committed >= 2

    def test_adaptive_batching_preserves_results(self, baselines):
        for backend in ("inline", "process"):
            registry = MetricsRegistry()
            result = build_engine(
                "wc",
                fuse="auto",
                backend=backend,
                adaptive_batch=True,
                epoch_interval=100,
                queue_budget=2048,
                registry=registry,
            ).run(EVENTS)
            assert_identical(baselines["wc"], result)
            snapshot = registry.snapshot()
            assert "runtime.batch.adjustments" in snapshot["counters"]
            assert snapshot["gauges"]["runtime.fusion.chains"] == 1.0


# ---------------------------------------------------------------------------
# Faults landing inside a fused chain
# ---------------------------------------------------------------------------
class TestFusionUnderFault:
    """A crash in a chain *member* recovers exactly like an unfused run:
    per-constituent state snapshots make the chain checkpointable."""

    @pytest.mark.parametrize("backend", ["inline", "process"])
    def test_chain_member_crash_recovers(self, baselines, backend):
        result = build_engine(
            "wc",
            fuse="auto",
            backend=backend,
            queue_budget=2048,
            fault_plan=FaultPlan(
                seed=3, kinds=("crash",), at_tuple=150, target="splitter"
            ),
            recovery_policy="retry",
            epoch_interval=100,
        ).run(EVENTS)
        assert result.recovery.completed is True
        assert result.recovery.restarts >= 1
        assert result.sink_received() == baselines["wc"].sink_received()
        assert sink_multiset(result) == sink_multiset(baselines["wc"])

    def test_chain_member_raise_fails_fast_by_default(self):
        engine = build_engine(
            "wc",
            fuse="auto",
            queue_budget=2048,
            fault_plan=FaultPlan(
                seed=3, kinds=("raise",), at_tuple=50, target="counter"
            ),
        )
        with pytest.raises(ExecutionError):
            engine.run(EVENTS)
