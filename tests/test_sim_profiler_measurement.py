"""Unit tests for the operator profiler and round-trip measurements."""

import os
import subprocess
import sys

import pytest

from repro.core import BRISKSTREAM, PerformanceModel
from repro.errors import ProfilingError
from repro.simulation import OperatorProfiler, RoundTripMeter, profile_operator_cdf

from tests.conftest import build_pipeline, pipeline_profiles


@pytest.fixture()
def setup():
    topology = build_pipeline()
    profiles = pipeline_profiles(topology)
    return topology, profiles


class TestSeedingStability:
    """Profiling draws must not depend on the interpreter's hash salt."""

    _SNIPPET = (
        "import json\n"
        "from tests.conftest import build_pipeline, pipeline_profiles\n"
        "from repro.simulation import OperatorProfiler\n"
        "profiles = pipeline_profiles(build_pipeline())\n"
        "samples = OperatorProfiler(profiles, seed=1).profile('fan', samples=8)\n"
        "print(json.dumps([float(c) for c in samples.cycles]))\n"
    )

    def _draw_in_subprocess(self, hash_seed: str) -> str:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        proc = subprocess.run(
            [sys.executable, "-c", self._SNIPPET],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return proc.stdout.strip()

    def test_samples_stable_across_hash_seeds(self, setup):
        # Before the crc32-based component digest, str hashing made these
        # draws differ between interpreters with different hash salts.
        assert self._draw_in_subprocess("0") == self._draw_in_subprocess("12345")

    def test_samples_per_component_differ(self, setup):
        _, profiles = setup
        profiler = OperatorProfiler(profiles, seed=1)
        fan = profiler.profile("fan", samples=16)
        stage = profiler.profile("stage", samples=16)
        assert list(fan.cycles) != list(stage.cycles)


class TestProfiler:
    def test_median_tracks_configured_te(self, setup):
        _, profiles = setup
        profiler = OperatorProfiler(profiles, seed=1)
        samples = profiler.profile("fan", samples=20000)
        assert samples.percentile(50) == pytest.approx(800, rel=0.05)

    def test_cv_tracks_configuration(self, setup):
        _, profiles = setup
        profiler = OperatorProfiler(profiles, seed=1)
        samples = profiler.profile("fan", samples=20000)
        assert samples.cv == pytest.approx(profiles["fan"].te_cv, rel=0.3)

    def test_cdf_monotone_figure3_shape(self, setup):
        _, profiles = setup
        profiler = OperatorProfiler(profiles, seed=2)
        cdf = profiler.profile("stage").cdf()
        cycles = [x for x, _ in cdf]
        assert cycles == sorted(cycles)
        assert cdf[-1][1] == 1.0

    def test_profile_all_covers_components(self, setup):
        topology, profiles = setup
        results = OperatorProfiler(profiles, seed=1).profile_all(samples=500)
        assert set(results) == set(topology.components)

    def test_instantiate_percentile(self, setup):
        """Lower percentile -> optimistic Te -> higher model throughput."""
        topology, profiles = setup
        profiler = OperatorProfiler(profiles, seed=3)
        optimistic = profiler.instantiate(percentile=10.0)
        pessimistic = profiler.instantiate(percentile=90.0)
        for name in topology.components:
            assert optimistic[name].te_cycles < pessimistic[name].te_cycles

    def test_too_few_samples_rejected(self, setup):
        _, profiles = setup
        with pytest.raises(ProfilingError):
            OperatorProfiler(profiles).profile("fan", samples=1)

    def test_standalone_cdf_helper(self, setup):
        _, profiles = setup
        cdf = profile_operator_cdf(profiles["fan"], samples=200, seed=1)
        assert len(cdf) == 200


class TestRoundTripMeter:
    @pytest.fixture()
    def meter(self, setup, tiny_machine):
        topology, profiles = setup
        return RoundTripMeter(topology, profiles, tiny_machine)

    def test_local_breakdown_has_no_rma(self, meter):
        breakdown = meter.breakdown("fan", remote=False)
        assert breakdown.rma_ns == 0.0
        assert breakdown.execute_ns > 0
        assert breakdown.others_ns > 0

    def test_remote_breakdown_charges_rma(self, meter):
        breakdown = meter.breakdown("fan", remote=True)
        assert breakdown.rma_ns > 0
        assert breakdown.total_ns > meter.breakdown("fan").total_ns

    def test_estimate_dominates_measurement(self, meter, tiny_machine):
        for to_socket in range(1, tiny_machine.n_sockets):
            measured, estimated = meter.t_under_distance("fan", 0, to_socket)
            assert measured <= estimated

    def test_t_grows_with_distance(self, meter):
        local_m, local_e = meter.t_under_distance("fan", 0, 0)
        near_m, near_e = meter.t_under_distance("fan", 0, 1)
        far_m, far_e = meter.t_under_distance("fan", 0, 2)
        assert local_m <= near_m <= far_m
        assert local_e <= near_e <= far_e
        assert local_m == local_e  # collocated: no RMA in either

    def test_spout_has_no_producer(self, meter):
        with pytest.raises(ProfilingError):
            meter.t_under_distance("spout", 0, 1)

    def test_storm_breakdown_bigger_everywhere(self, setup, tiny_machine):
        from repro.baselines import STORM

        topology, profiles = setup
        brisk = RoundTripMeter(topology, profiles, tiny_machine)
        storm = RoundTripMeter(topology, profiles, tiny_machine, system=STORM)
        b = brisk.breakdown("fan")
        s = storm.breakdown("fan")
        assert s.execute_ns > b.execute_ns
        assert s.others_ns > b.others_ns
