"""Live reconfiguration: drift-triggered migration at epoch barriers.

The scenario is WC with a mid-stream workload shift: after ``shift_at``
sentences the generator switches from 10 to 25 words per sentence, a
2.5x selectivity drift the controller observes exactly from barrier
commit deltas.  The operating point (3M events/s on a 4-socket Server A)
is chosen so RLAS deploys an *uneven* socket spread — the modeled
throughput is placement-sensitive there, so re-placing under the drifted
profiles finds strictly improving moves.  Under a uniform spread the
model is placement-invariant and the controller correctly stays put
(the no-drift test pins that).

The load-bearing assertion is bit-identity: live migration (pause at a
barrier, hand snapshots to re-placed tasks, resume) must not change a
single result relative to the same plan run without adaptation.
"""

import pytest

from repro.apps import load_application
from repro.apps.wordcount import build_wordcount
from repro.core import RLASOptimizer
from repro.dsps import LocalEngine
from repro.errors import ExecutionError
from repro.hardware import server_a
from repro.runtime import ReconfigController

EVENTS = 3000
INTERVAL = 500
#: Ingress rate at which RLAS spreads WC unevenly across the 4 sockets.
RATE = 3_000_000


@pytest.fixture(scope="module")
def wc_profiles():
    return load_application("wc")[1]


@pytest.fixture(scope="module")
def shifted_plan(wc_profiles):
    """Deployment plan for the workload-shift topology (drift at 800)."""
    topology = build_wordcount(seed=7, shift_at=800, shift_words_per_sentence=25)
    return RLASOptimizer(
        topology, wc_profiles, server_a(4), RATE
    ).optimize()


def controller_for(plan, profiles, **kwargs):
    return ReconfigController(plan, profiles, RATE, **kwargs)


def run_engine(plan, controller=None, **kwargs):
    return LocalEngine.from_plan(
        plan.expanded_plan,
        epoch_interval=INTERVAL,
        reconfig=controller,
        **kwargs,
    ).run(EVENTS)


def sink_states(result):
    return {
        component: [sink.snapshot_state() for sink in sinks]
        for component, sinks in result.sinks.items()
    }


def stats_view(result):
    return {
        task_id: (stats.tuples_in, stats.tuples_out, stats.out_by_stream)
        for task_id, stats in result.task_stats.items()
    }


class TestValidation:
    def test_thresholds_must_be_ordered(self, shifted_plan, wc_profiles):
        with pytest.raises(ExecutionError, match="thresholds"):
            controller_for(
                shifted_plan,
                wc_profiles,
                replace_threshold=0.5,
                reoptimize_threshold=0.2,
            )

    def test_replace_threshold_must_be_positive(self, shifted_plan, wc_profiles):
        with pytest.raises(ExecutionError, match="thresholds"):
            controller_for(shifted_plan, wc_profiles, replace_threshold=0.0)

    def test_ingress_rate_must_be_positive(self, shifted_plan, wc_profiles):
        with pytest.raises(ExecutionError, match="ingress rate"):
            ReconfigController(shifted_plan, wc_profiles, 0.0)

    def test_reconfig_requires_barriers(self, shifted_plan, wc_profiles):
        controller = controller_for(shifted_plan, wc_profiles)
        with pytest.raises(ExecutionError, match="epoch_interval"):
            LocalEngine.from_plan(
                shifted_plan.expanded_plan, reconfig=controller
            )


class TestDriftMigration:
    @pytest.fixture(scope="class")
    def adapted(self, shifted_plan, wc_profiles):
        controller = controller_for(shifted_plan, wc_profiles)
        return run_engine(shifted_plan, controller), controller

    def test_shift_triggers_live_migration(self, adapted):
        result, controller = adapted
        report = controller.report
        assert result.reconfig is report
        assert report.observations == result.epochs.committed
        assert report.replans >= 1
        assert report.migrations >= 1
        assert result.epochs.migrations == report.migrations

    def test_migration_events_carry_modeled_gain(self, adapted):
        _, controller = adapted
        migrated = [
            e for e in controller.report.events if e["outcome"] == "migrated"
        ]
        assert migrated
        for event in migrated:
            assert event["moved"]
            assert event["modeled_after"] > event["modeled_before"]
            assert event["magnitude"] >= controller.report.replace_threshold

    def test_results_bit_identical_to_unadapted_run(
        self, adapted, shifted_plan
    ):
        """The stream never stops and nothing changes observably."""
        result, controller = adapted
        assert controller.report.migrations >= 1
        baseline = run_engine(shifted_plan)
        assert result.events_ingested == baseline.events_ingested
        assert result.sink_received() == baseline.sink_received()
        assert stats_view(result) == stats_view(baseline)
        assert sink_states(result) == sink_states(baseline)

    def test_run_report_payload_round_trips(self, adapted):
        _, controller = adapted
        payload = controller.report.to_dict()
        assert payload["migrations"] == controller.report.migrations
        assert len(payload["timeline"]) == len(controller.report.events)


class TestNoDrift:
    def test_stable_workload_keeps_placement(self, wc_profiles):
        """No shift, no wall-clock signal: the controller never migrates.

        The process backend reports no per-task wall time, so observed
        profiles differ from the deployed ones only through measured
        selectivities — which a stable workload reproduces exactly.
        """
        topology = build_wordcount(seed=7)
        plan = RLASOptimizer(topology, wc_profiles, server_a(4), RATE).optimize()
        controller = controller_for(plan, wc_profiles)
        result = run_engine(
            plan, controller, backend="process", n_workers=2
        )
        assert controller.report.observations == result.epochs.committed
        assert controller.report.migrations == 0
        assert result.epochs.migrations == 0
