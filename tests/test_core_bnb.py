"""Unit tests for branch-and-bound placement (Algorithm 2)."""

import pytest

from repro.core import (
    PerformanceModel,
    PlacementOptimizer,
    TfMode,
    collocated_plan,
)
from repro.dsps import ExecutionGraph
from repro.errors import PlanError

from tests.conftest import build_pipeline, pipeline_profiles


@pytest.fixture()
def model(tiny_machine):
    topology = build_pipeline()
    return PerformanceModel(pipeline_profiles(topology), tiny_machine)


@pytest.fixture()
def topology():
    return build_pipeline()


class TestSearch:
    def test_finds_feasible_plan(self, model, topology):
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        result = PlacementOptimizer(model, 1e6).optimize(graph)
        assert result.plan is not None
        assert result.plan.is_complete
        assert result.throughput > 0
        assert result.stats.solutions_found >= 1

    def test_light_load_collocates(self, model, topology):
        """At low rates everything fits locally, which is optimal (Tf=0)."""
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        result = PlacementOptimizer(model, 1e5).optimize(graph)
        assert len(result.plan.used_sockets()) == 1

    def test_matches_collocated_value_when_local_fits(self, model, topology):
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        result = PlacementOptimizer(model, 1e5).optimize(graph)
        reference = model.evaluate(collocated_plan(graph), 1e5).throughput
        assert result.throughput >= reference * (1 - 1e-9)

    def test_spreads_when_one_socket_is_too_small(self, model, topology, tiny_machine):
        # 3 replicas each = 12 replicas > 4 cores per socket.
        graph = ExecutionGraph(topology, {n: 3 for n in topology.components})
        result = PlacementOptimizer(model, 1e7).optimize(graph)
        assert result.plan is not None
        assert len(result.plan.used_sockets()) >= 3
        for socket in result.plan.used_sockets():
            assert result.plan.replicas_on(socket) <= tiny_machine.cores_per_socket

    def test_infeasible_when_replicas_exceed_cores(self, model, topology):
        graph = ExecutionGraph(topology, {n: 5 for n in topology.components})
        result = PlacementOptimizer(model, 1e6).optimize(graph)
        assert result.plan is None
        assert not result.feasible
        assert result.throughput == 0.0

    def test_initial_plan_seeds_incumbent(self, model, topology):
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        seed = collocated_plan(graph)
        result = PlacementOptimizer(model, 1e5).optimize(graph, initial_plan=seed)
        assert result.throughput >= model.evaluate(seed, 1e5).throughput * (1 - 1e-9)

    def test_respects_node_budget(self, model, topology):
        graph = ExecutionGraph(topology, {n: 2 for n in topology.components})
        result = PlacementOptimizer(model, 1e7, max_nodes=3).optimize(graph)
        assert result.stats.nodes_expanded <= 3

    def test_branch_width_one_is_greedy(self, model, topology):
        graph = ExecutionGraph(topology, {n: 2 for n in topology.components})
        result = PlacementOptimizer(model, 1e7, branch_width=1).optimize(graph)
        assert result.plan is not None
        # Greedy: one child per expansion.
        assert result.stats.children_generated <= result.stats.nodes_expanded + 1

    def test_wider_search_never_worse(self, model, topology):
        graph = ExecutionGraph(topology, {n: 2 for n in topology.components})
        narrow = PlacementOptimizer(model, 1e7, branch_width=1).optimize(graph)
        wide = PlacementOptimizer(model, 1e7, branch_width=4).optimize(graph)
        assert wide.throughput >= narrow.throughput * (1 - 1e-9)

    def test_invalid_parameters(self, model):
        with pytest.raises(PlanError):
            PlacementOptimizer(model, 0.0)
        with pytest.raises(PlanError):
            PlacementOptimizer(model, 1e6, branch_width=0)

    def test_bottlenecks_reported(self, model, topology):
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        result = PlacementOptimizer(model, 1e12).optimize(graph)
        assert result.bottlenecks  # everything is over-fed at infinite input

    def test_compressed_graph_supported(self, model, topology):
        graph = ExecutionGraph(
            topology, {"spout": 1, "stage": 1, "fan": 4, "sink": 1}, group_size=2
        )
        result = PlacementOptimizer(model, 1e7).optimize(graph)
        assert result.plan is not None


class TestNumaAwareness:
    def test_prefers_fewer_hops(self, model, topology, tiny_machine):
        """When forced off-socket, the plan should stay within the tray."""
        graph = ExecutionGraph(topology, {n: 2 for n in topology.components})
        result = PlacementOptimizer(model, 1e7).optimize(graph)
        used = sorted(result.plan.used_sockets())
        # tiny machine trays are (0,1) and (2,3): an in-tray plan exists
        # for 8 replicas, so the search should not span trays.
        trays = {tiny_machine.topology.tray_of(s) for s in used}
        assert len(trays) == 1

    def test_zero_tf_mode_yields_equal_or_higher_estimate(
        self, topology, tiny_machine
    ):
        profiles = pipeline_profiles(topology)
        graph = ExecutionGraph(topology, {n: 2 for n in topology.components})
        relative = PlacementOptimizer(
            PerformanceModel(profiles, tiny_machine, tf_mode=TfMode.RELATIVE), 1e7
        ).optimize(graph)
        zero = PlacementOptimizer(
            PerformanceModel(profiles, tiny_machine, tf_mode=TfMode.ZERO), 1e7
        ).optimize(graph)
        assert zero.throughput >= relative.throughput * (1 - 1e-9)


def _counter_tuple(stats):
    return (
        stats.nodes_expanded,
        stats.nodes_pruned,
        stats.nodes_deduplicated,
        stats.children_generated,
        stats.evaluations,
        stats.solutions_found,
        stats.best_fit_commits,
    )


class TestIncrementalParity:
    """The incremental probe path must be bit-identical to the legacy
    batch-evaluation path: same plans, same throughput, same search tree."""

    @pytest.mark.parametrize("replication", [1, 2, 3])
    @pytest.mark.parametrize("rate", [1e5, 1e7])
    def test_plans_and_stats_match_legacy(self, model, topology, replication, rate):
        graph = ExecutionGraph(
            topology, {n: replication for n in topology.components}
        )
        legacy = PlacementOptimizer(model, rate, use_incremental=False).optimize(
            graph
        )
        fast = PlacementOptimizer(model, rate, use_incremental=True).optimize(
            graph
        )
        if legacy.plan is None:
            assert fast.plan is None
        else:
            assert fast.plan.placement == legacy.plan.placement
        assert fast.throughput == legacy.throughput
        assert _counter_tuple(fast.stats) == _counter_tuple(legacy.stats)

    def test_incremental_counters_populated(self, model, topology):
        graph = ExecutionGraph(topology, {n: 2 for n in topology.components})
        result = PlacementOptimizer(model, 1e7).optimize(graph)
        assert result.stats.cache_hits >= 0
        assert result.stats.incremental_evals > 0
        # legacy path never touches the evaluator counters
        legacy = PlacementOptimizer(model, 1e7, use_incremental=False).optimize(
            graph
        )
        assert legacy.stats.incremental_evals == 0
        assert legacy.stats.full_evals == 0

    def test_stats_publish_new_metric_names(self, model, topology):
        from repro.metrics import MetricsRegistry

        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        result = PlacementOptimizer(model, 1e6).optimize(graph)
        registry = MetricsRegistry()
        result.stats.publish(registry)
        names = set(registry.names())
        assert "rlas.bnb.cache_hits" in names
        assert "rlas.model.incremental_evals" in names
        assert "rlas.model.full_evals" in names


class TestParallelSearch:
    def test_workers_match_sequential_throughput(self, model, topology):
        graph = ExecutionGraph(topology, {n: 2 for n in topology.components})
        sequential = PlacementOptimizer(model, 1e7).optimize(graph)
        parallel = PlacementOptimizer(model, 1e7, workers=3).optimize(graph)
        assert parallel.plan is not None
        assert parallel.throughput == sequential.throughput
        assert parallel.stats.workers == 3

    def test_single_worker_is_default_and_deterministic(self, model, topology):
        graph = ExecutionGraph(topology, {n: 2 for n in topology.components})
        first = PlacementOptimizer(model, 1e7).optimize(graph)
        second = PlacementOptimizer(model, 1e7).optimize(graph)
        assert first.plan.placement == second.plan.placement
        assert _counter_tuple(first.stats) == _counter_tuple(second.stats)
        assert first.stats.workers == 1

    def test_invalid_workers_rejected(self, model):
        with pytest.raises(PlanError):
            PlacementOptimizer(model, 1e6, workers=0)


class TestDeterministicTieBreak:
    def test_symmetric_machine_uses_lowest_socket(self, model, topology):
        """All sockets look identical to the first task: candidate
        deduplication plus the (rate, collocation, remaining-cpu,
        socket-id) ranking must deterministically pick socket 0."""
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        result = PlacementOptimizer(model, 1e5).optimize(graph)
        assert result.plan.used_sockets() == {0}

    def test_spread_plan_prefers_low_socket_ids(self, model, topology, tiny_machine):
        """When forced off-socket on a symmetric machine, equivalent
        sockets must be chosen in ascending id order (satellite: stable
        best-fit ranking)."""
        graph = ExecutionGraph(topology, {n: 3 for n in topology.components})
        result = PlacementOptimizer(model, 1e7).optimize(graph)
        used = sorted(result.plan.used_sockets())
        # low ids first: using socket k implies sockets of strictly lower
        # id within the same tray are used too
        tray0 = [s for s in used if tiny_machine.topology.tray_of(s) == 0]
        if tray0:
            assert tray0 == list(range(len(tray0)))
