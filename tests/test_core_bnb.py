"""Unit tests for branch-and-bound placement (Algorithm 2)."""

import pytest

from repro.core import (
    PerformanceModel,
    PlacementOptimizer,
    TfMode,
    collocated_plan,
)
from repro.dsps import ExecutionGraph
from repro.errors import PlanError

from tests.conftest import build_pipeline, pipeline_profiles


@pytest.fixture()
def model(tiny_machine):
    topology = build_pipeline()
    return PerformanceModel(pipeline_profiles(topology), tiny_machine)


@pytest.fixture()
def topology():
    return build_pipeline()


class TestSearch:
    def test_finds_feasible_plan(self, model, topology):
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        result = PlacementOptimizer(model, 1e6).optimize(graph)
        assert result.plan is not None
        assert result.plan.is_complete
        assert result.throughput > 0
        assert result.stats.solutions_found >= 1

    def test_light_load_collocates(self, model, topology):
        """At low rates everything fits locally, which is optimal (Tf=0)."""
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        result = PlacementOptimizer(model, 1e5).optimize(graph)
        assert len(result.plan.used_sockets()) == 1

    def test_matches_collocated_value_when_local_fits(self, model, topology):
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        result = PlacementOptimizer(model, 1e5).optimize(graph)
        reference = model.evaluate(collocated_plan(graph), 1e5).throughput
        assert result.throughput >= reference * (1 - 1e-9)

    def test_spreads_when_one_socket_is_too_small(self, model, topology, tiny_machine):
        # 3 replicas each = 12 replicas > 4 cores per socket.
        graph = ExecutionGraph(topology, {n: 3 for n in topology.components})
        result = PlacementOptimizer(model, 1e7).optimize(graph)
        assert result.plan is not None
        assert len(result.plan.used_sockets()) >= 3
        for socket in result.plan.used_sockets():
            assert result.plan.replicas_on(socket) <= tiny_machine.cores_per_socket

    def test_infeasible_when_replicas_exceed_cores(self, model, topology):
        graph = ExecutionGraph(topology, {n: 5 for n in topology.components})
        result = PlacementOptimizer(model, 1e6).optimize(graph)
        assert result.plan is None
        assert not result.feasible
        assert result.throughput == 0.0

    def test_initial_plan_seeds_incumbent(self, model, topology):
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        seed = collocated_plan(graph)
        result = PlacementOptimizer(model, 1e5).optimize(graph, initial_plan=seed)
        assert result.throughput >= model.evaluate(seed, 1e5).throughput * (1 - 1e-9)

    def test_respects_node_budget(self, model, topology):
        graph = ExecutionGraph(topology, {n: 2 for n in topology.components})
        result = PlacementOptimizer(model, 1e7, max_nodes=3).optimize(graph)
        assert result.stats.nodes_expanded <= 3

    def test_branch_width_one_is_greedy(self, model, topology):
        graph = ExecutionGraph(topology, {n: 2 for n in topology.components})
        result = PlacementOptimizer(model, 1e7, branch_width=1).optimize(graph)
        assert result.plan is not None
        # Greedy: one child per expansion.
        assert result.stats.children_generated <= result.stats.nodes_expanded + 1

    def test_wider_search_never_worse(self, model, topology):
        graph = ExecutionGraph(topology, {n: 2 for n in topology.components})
        narrow = PlacementOptimizer(model, 1e7, branch_width=1).optimize(graph)
        wide = PlacementOptimizer(model, 1e7, branch_width=4).optimize(graph)
        assert wide.throughput >= narrow.throughput * (1 - 1e-9)

    def test_invalid_parameters(self, model):
        with pytest.raises(PlanError):
            PlacementOptimizer(model, 0.0)
        with pytest.raises(PlanError):
            PlacementOptimizer(model, 1e6, branch_width=0)

    def test_bottlenecks_reported(self, model, topology):
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        result = PlacementOptimizer(model, 1e12).optimize(graph)
        assert result.bottlenecks  # everything is over-fed at infinite input

    def test_compressed_graph_supported(self, model, topology):
        graph = ExecutionGraph(
            topology, {"spout": 1, "stage": 1, "fan": 4, "sink": 1}, group_size=2
        )
        result = PlacementOptimizer(model, 1e7).optimize(graph)
        assert result.plan is not None


class TestNumaAwareness:
    def test_prefers_fewer_hops(self, model, topology, tiny_machine):
        """When forced off-socket, the plan should stay within the tray."""
        graph = ExecutionGraph(topology, {n: 2 for n in topology.components})
        result = PlacementOptimizer(model, 1e7).optimize(graph)
        used = sorted(result.plan.used_sockets())
        # tiny machine trays are (0,1) and (2,3): an in-tray plan exists
        # for 8 replicas, so the search should not span trays.
        trays = {tiny_machine.topology.tray_of(s) for s in used}
        assert len(trays) == 1

    def test_zero_tf_mode_yields_equal_or_higher_estimate(
        self, topology, tiny_machine
    ):
        profiles = pipeline_profiles(topology)
        graph = ExecutionGraph(topology, {n: 2 for n in topology.components})
        relative = PlacementOptimizer(
            PerformanceModel(profiles, tiny_machine, tf_mode=TfMode.RELATIVE), 1e7
        ).optimize(graph)
        zero = PlacementOptimizer(
            PerformanceModel(profiles, tiny_machine, tf_mode=TfMode.ZERO), 1e7
        ).optimize(graph)
        assert zero.throughput >= relative.throughput * (1 - 1e-9)
