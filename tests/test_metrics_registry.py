"""Unit tests for the metrics registry, instrumentation hooks and exporter."""

import json
import statistics

import pytest

from repro.apps import load_application
from repro.core import PerformanceModel, RLASOptimizer, collocated_plan
from repro.dsps import ExecutionGraph
from repro.dsps.engine import LocalEngine
from repro.errors import MetricsError
from repro.metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    build_report,
    load_report,
    write_report,
)
from repro.metrics.registry import Histogram
from repro.simulation import DiscreteEventSimulator

from tests.conftest import build_pipeline, pipeline_profiles


class TestCounter:
    def test_increments(self):
        counter = MetricsRegistry().counter("a.0.n")
        counter.inc()
        counter.inc(5)
        assert counter.snapshot() == 6

    def test_rejects_negative(self):
        counter = MetricsRegistry().counter("a.0.n")
        with pytest.raises(MetricsError):
            counter.inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        gauge = MetricsRegistry().gauge("a.0.g")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.snapshot() == 1.5


class TestHistogram:
    def test_moments_are_exact(self):
        histogram = Histogram("h")
        for value in [5.0, 1.0, 3.0]:
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 9.0
        assert histogram.mean == 3.0
        assert histogram.min == 1.0
        assert histogram.max == 5.0

    def test_quantiles_match_statistics_module(self):
        # Deterministic, unsorted, with duplicates.
        data = [((i * 37) % 101) * 0.5 for i in range(100)]
        histogram = Histogram("h")
        for value in data:
            histogram.observe(value)
        # Inclusive-method cut points: quantiles(n)[i-1] == quantile(i/n).
        quartiles = statistics.quantiles(data, n=4, method="inclusive")
        assert histogram.quantile(0.25) == pytest.approx(quartiles[0])
        assert histogram.percentile(50) == pytest.approx(quartiles[1])
        assert histogram.percentile(75) == pytest.approx(quartiles[2])
        percentiles = statistics.quantiles(data, n=100, method="inclusive")
        assert histogram.percentile(95) == pytest.approx(percentiles[94])
        assert histogram.percentile(99) == pytest.approx(percentiles[98])

    def test_reservoir_is_bounded_but_moments_stay_exact(self):
        histogram = Histogram("h", reservoir=64)
        for i in range(10_000):
            histogram.observe(float(i))
        assert len(histogram._reservoir) == 64
        assert histogram.count == 10_000
        assert histogram.min == 0.0
        assert histogram.max == 9999.0
        # The sampled median lands near the true median.
        assert histogram.percentile(50) == pytest.approx(5000, rel=0.25)

    def test_reservoir_sampling_is_deterministic(self):
        def build():
            h = Histogram("same-name", reservoir=32)
            for i in range(1000):
                h.observe(float(i % 97))
            return h.snapshot()

        assert build() == build()

    def test_empty_histogram(self):
        histogram = Histogram("h")
        assert histogram.snapshot() == {"count": 0}
        with pytest.raises(MetricsError):
            histogram.quantile(0.5)

    def test_quantile_bounds(self):
        histogram = Histogram("h")
        histogram.observe(1.0)
        with pytest.raises(MetricsError):
            histogram.quantile(1.5)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x.0.c") is registry.counter("x.0.c")
        assert registry.histogram("x.0.h") is registry.histogram("x.0.h")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x.0.c")
        with pytest.raises(MetricsError):
            registry.gauge("x.0.c")

    def test_empty_name_rejected(self):
        with pytest.raises(MetricsError):
            MetricsRegistry().counter("")

    def test_snapshot_structure(self):
        registry = MetricsRegistry()
        registry.counter("a.0.c").inc(2)
        registry.gauge("a.0.g").set(1.0)
        registry.histogram("a.0.h").observe(4.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"a.0.c": 2}
        assert snap["gauges"] == {"a.0.g": 1.0}
        assert snap["histograms"]["a.0.h"]["count"] == 1
        assert {"p50", "p95", "p99"} <= set(snap["histograms"]["a.0.h"])
        assert len(registry) == 3
        assert list(registry.names()) == ["a.0.c", "a.0.g", "a.0.h"]


class TestNullRegistry:
    def test_disabled_and_inert(self):
        registry = NullRegistry()
        assert registry.enabled is False
        registry.counter("a.0.c").inc(10)
        registry.gauge("a.0.g").set(1.0)
        registry.histogram("a.0.h").observe(5.0)
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_instruments_are_shared_singletons(self):
        registry = NullRegistry()
        assert registry.counter("a") is registry.counter("b")
        assert registry.histogram("a") is registry.histogram("b")

    def test_module_singleton(self):
        assert NULL_REGISTRY.enabled is False


class TestEngineInstrumentation:
    @pytest.fixture(scope="class")
    def instrumented_run(self):
        topology, _ = load_application("wc")
        registry = MetricsRegistry()
        engine = LocalEngine(topology, registry=registry)
        return engine, registry, engine.run(200)

    def test_counters_match_task_stats_exactly(self, instrumented_run):
        engine, registry, result = instrumented_run
        counters = registry.snapshot()["counters"]
        for task in engine.graph.tasks:
            stats = result.task_stats[task.task_id]
            prefix = f"engine.{task.component}.{task.replica_start}"
            assert counters[f"{prefix}.tuples_in"] == stats.tuples_in
            assert counters[f"{prefix}.tuples_out"] == stats.tuples_out
        assert counters["engine.run.events_ingested"] == result.events_ingested
        assert counters["engine.run.sink_received"] == result.sink_received()

    def test_process_latency_histograms(self, instrumented_run):
        _, registry, _ = instrumented_run
        histograms = registry.snapshot()["histograms"]
        process = {n: h for n, h in histograms.items() if n.endswith(".process_ns")}
        assert process
        for stats in process.values():
            assert stats["count"] > 0
            assert stats["p50"] <= stats["p95"] <= stats["p99"] <= stats["max"]

    def test_queue_gauges(self, instrumented_run):
        _, registry, _ = instrumented_run
        gauges = registry.snapshot()["gauges"]
        fills = {n: v for n, v in gauges.items() if n.endswith(".jumbo_fill_ratio")}
        assert fills
        assert all(0.0 <= v <= 1.0 for v in fills.values())
        assert any(n.endswith(".max_depth_tuples") for n in gauges)

    def test_uninstrumented_run_is_identical(self, instrumented_run):
        engine, _, instrumented = instrumented_run
        plain = LocalEngine(engine.topology).run(200)
        for task_id, stats in instrumented.task_stats.items():
            assert plain.task_stats[task_id].tuples_in == stats.tuples_in
            assert plain.task_stats[task_id].tuples_out == stats.tuples_out


class TestSimulatorInstrumentation:
    def test_des_occupancy_and_service(self, tiny_machine):
        topology = build_pipeline()
        profiles = pipeline_profiles(topology)
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        registry = MetricsRegistry()
        simulator = DiscreteEventSimulator(
            profiles, tiny_machine, seed=1, registry=registry
        )
        result = simulator.run(collocated_plan(graph), 1e5, max_events=500)
        snap = registry.snapshot()
        assert snap["counters"]["des.run.events_generated"] == result.events_generated
        assert snap["counters"]["des.run.tuples_delivered"] == result.tuples_delivered
        occupancy = {n: v for n, v in snap["gauges"].items() if n.endswith(".occupancy")}
        assert occupancy
        assert all(0.0 <= v <= 1.0 for v in occupancy.values())
        service = {n: h for n, h in snap["histograms"].items() if n.endswith(".service_ns")}
        assert service and all(h["count"] > 0 for h in service.values())
        waits = {n: h for n, h in snap["histograms"].items() if n.endswith(".wait_ns")}
        assert waits  # non-spout replicas pulled batches from queues
        assert snap["histograms"]["des.run.latency_ns"]["count"] == len(
            result.latency.samples_ns
        )

    def test_des_null_registry_matches(self, tiny_machine):
        topology = build_pipeline()
        profiles = pipeline_profiles(topology)
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        plan = collocated_plan(graph)
        plain = DiscreteEventSimulator(profiles, tiny_machine, seed=1).run(
            plan, 1e5, max_events=300
        )
        metered = DiscreteEventSimulator(
            profiles, tiny_machine, seed=1, registry=MetricsRegistry()
        ).run(plan, 1e5, max_events=300)
        assert plain.latency.samples_ns == metered.latency.samples_ns
        assert plain.simulated_ns == metered.simulated_ns


class TestOptimizerInstrumentation:
    def test_rlas_search_counters(self, tiny_machine):
        topology = build_pipeline()
        profiles = pipeline_profiles(topology)
        registry = MetricsRegistry()
        RLASOptimizer(
            topology,
            profiles,
            tiny_machine,
            ingress_rate=1e5,
            max_iterations=4,
            registry=registry,
        ).optimize()
        snap = registry.snapshot()
        counters = snap["counters"]
        assert counters["rlas.scaling.iterations"] >= 1
        assert counters["rlas.bnb.nodes_expanded"] > 0
        assert counters["rlas.bnb.plans_evaluated"] > 0
        assert counters["rlas.optimize.runs"] == 1
        assert snap["gauges"]["rlas.optimize.realized_throughput"] > 0
        assert snap["gauges"]["rlas.scaling.time_to_best_s"] >= 0


class TestExportRoundTrip:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("engine.op.0.tuples_in").inc(42)
        registry.gauge("engine.queue.0-1.jumbo_fill_ratio").set(0.75)
        histogram = registry.histogram("engine.op.0.process_ns")
        for value in (10.0, 20.0, 30.0):
            histogram.observe(value)
        return registry

    def test_round_trip(self, tmp_path):
        registry = self._registry()
        report = build_report(
            "engine-run", "wc", registry=registry, meta={"app": "wc"}, data={"k": 1}
        )
        path = write_report(tmp_path / "report.json", report)
        loaded = load_report(path)
        assert loaded.schema_version == report.schema_version
        assert loaded.kind == "engine-run"
        assert loaded.name == "wc"
        assert loaded.meta == {"app": "wc"}
        assert loaded.data == {"k": 1}
        assert loaded.metrics == registry.snapshot()
        assert loaded.counters()["engine.op.0.tuples_in"] == 42
        assert loaded.histograms()["engine.op.0.process_ns"]["p50"] == 20.0

    def test_rejects_future_schema(self, tmp_path):
        report = build_report("engine-run", "wc")
        raw = report.to_dict()
        raw["schema_version"] = 999
        path = tmp_path / "future.json"
        path.write_text(json.dumps(raw))
        with pytest.raises(MetricsError):
            load_report(path)

    def test_rejects_missing_keys(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text(json.dumps({"schema_version": 1, "kind": "x"}))
        with pytest.raises(MetricsError):
            load_report(path)

    def test_rejects_non_json(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("not json at all {")
        with pytest.raises(MetricsError):
            load_report(path)
