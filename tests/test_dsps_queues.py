"""Unit tests for communication queues and jumbo-tuple output buffers."""

import pytest

from repro.dsps import CommunicationQueue, OutputBuffer, StreamTuple
from repro.errors import SimulationError


def _batchify(buffer, n):
    sealed = []
    for i in range(n):
        batch = buffer.append(StreamTuple(values=(i,)))
        if batch is not None:
            sealed.append(batch)
    return sealed


class TestOutputBuffer:
    def test_seals_at_batch_size(self):
        buffer = OutputBuffer(producer=0, consumer=1, batch_size=4)
        sealed = _batchify(buffer, 9)
        assert len(sealed) == 2
        assert all(len(batch) == 4 for batch in sealed)
        assert buffer.pending == 1

    def test_flush_partial(self):
        buffer = OutputBuffer(0, 1, batch_size=4)
        _batchify(buffer, 2)
        batch = buffer.flush()
        assert batch is not None and len(batch) == 2
        assert buffer.flush() is None

    def test_sealed_counter(self):
        buffer = OutputBuffer(0, 1, batch_size=2)
        _batchify(buffer, 5)
        buffer.flush()
        assert buffer.sealed_batches == 3

    def test_invalid_batch_size(self):
        with pytest.raises(SimulationError):
            OutputBuffer(0, 1, batch_size=0)


class TestCommunicationQueue:
    def test_fifo_order(self):
        queue = CommunicationQueue(0, 1)
        buffer = OutputBuffer(0, 1, batch_size=3)
        for batch in _batchify(buffer, 6):
            queue.put(batch)
        drained = queue.drain_tuples()
        assert [t.values[0] for t in drained] == [0, 1, 2, 3, 4, 5]

    def test_unbounded_by_default(self):
        queue = CommunicationQueue(0, 1)
        assert not queue.is_full
        buffer = OutputBuffer(0, 1, batch_size=100)
        for batch in _batchify(buffer, 1000):
            queue.put(batch)
        assert queue.depth_tuples == 1000

    def test_bounded_rejects_overflow(self):
        queue = CommunicationQueue(0, 1, capacity_tuples=5)
        buffer = OutputBuffer(0, 1, batch_size=3)
        batches = _batchify(buffer, 9)
        assert queue.offer(batches[0])
        assert not queue.offer(batches[1]) or queue.depth_tuples <= 5
        # second batch fits (3+3 > 5): must have been rejected
        assert queue.depth_tuples == 3
        assert queue.stats.rejected_batches == 1

    def test_put_raises_when_full(self):
        queue = CommunicationQueue(0, 1, capacity_tuples=2)
        buffer = OutputBuffer(0, 1, batch_size=3)
        (batch,) = _batchify(buffer, 3)
        with pytest.raises(SimulationError, match="full"):
            queue.put(batch)

    def test_is_full_flag(self):
        queue = CommunicationQueue(0, 1, capacity_tuples=3)
        buffer = OutputBuffer(0, 1, batch_size=3)
        queue.put(_batchify(buffer, 3)[0])
        assert queue.is_full

    def test_poll_returns_none_when_empty(self):
        queue = CommunicationQueue(0, 1)
        assert queue.poll() is None
        assert queue.is_empty

    def test_drain_respects_max_but_keeps_batches_whole(self):
        queue = CommunicationQueue(0, 1)
        buffer = OutputBuffer(0, 1, batch_size=4)
        for batch in _batchify(buffer, 12):
            queue.put(batch)
        drained = queue.drain_tuples(max_tuples=5)
        assert len(drained) == 8  # two whole batches
        assert queue.depth_tuples == 4

    def test_stats_track_depth(self):
        queue = CommunicationQueue(0, 1)
        buffer = OutputBuffer(0, 1, batch_size=2)
        for batch in _batchify(buffer, 6):
            queue.put(batch)
        assert queue.stats.max_depth_tuples == 6
        queue.drain_tuples()
        assert queue.stats.pending_tuples == 0
        assert queue.stats.dequeued_tuples == 6

    def test_empty_batch_is_noop(self):
        from repro.dsps import JumboTuple

        queue = CommunicationQueue(0, 1, capacity_tuples=1)
        assert queue.offer(JumboTuple(source_task=0, target_task=1))
        assert queue.depth_tuples == 0

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            CommunicationQueue(0, 1, capacity_tuples=0)
