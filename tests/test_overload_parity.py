"""Overload-control parity suite: ``--shed off`` must be invisible.

Arming the overload subsystem without shedding may observe, track lag
and publish gauges — but it must never change *which* tuples flow.
Every example application is run with and without overload control (shed
mode ``off``) on both backends; sink multisets, events ingested and
per-task tuple counts must agree exactly.  This is the acceptance bar
that lets overload control default-on safely in operator tooling: the
observation plane is free.

A second class proves the converse for ``--shed random``: with shedding
*active* the decisions themselves are a pure function of
``(seed, edge, offset)``, so two identical runs shed identically.
"""

from collections import Counter as Multiset

import pytest

from repro.apps import load_application
from repro.dsps import LocalEngine
from repro.runtime import OverloadConfig, ProcessPoolBackend

EVENTS = 300
INTERVAL = 100

#: Replication configs under which each app's semantics are deterministic
#: across backends (same table as tests/test_dataplane_parity.py).
REPLICATION = {
    "wc": {"spout": 1, "parser": 2, "splitter": 2, "counter": 2, "sink": 1},
    "fd": {"spout": 1, "parser": 1, "predictor": 2, "sink": 1},
    "sd": {
        "spout": 1,
        "parser": 1,
        "moving_average": 2,
        "spike_detector": 2,
        "sink": 1,
    },
    "lr": None,  # parallelism hints (all 1); needs the ordered backend
}

APPS = ["wc", "fd", "sd", "lr"]


def run_app(app, *, backend="inline", overload=None, events=EVENTS, **kwargs):
    topology, _profiles = load_application(app)
    topology.component("sink").template.keep_samples = 10**6
    engine = LocalEngine(
        topology,
        replication=REPLICATION[app],
        backend=backend,
        epoch_interval=INTERVAL,
        overload=overload,
        **kwargs,
    )
    return engine.run(events)


def process_backend(app, overload=None):
    return ProcessPoolBackend(
        n_workers=2, ordered=(app == "lr"), overload=overload
    )


def sink_multiset(result):
    return Multiset(
        tuple(item.values)
        for sinks in result.sinks.values()
        for sink in sinks
        for item in sink.samples
    )


def task_counts(result):
    return {
        task_id: (stats.tuples_in, stats.tuples_out)
        for task_id, stats in result.task_stats.items()
    }


def assert_parity(reference, candidate):
    assert candidate.events_ingested == reference.events_ingested
    assert candidate.sink_received() == reference.sink_received()
    assert task_counts(candidate) == task_counts(reference)
    assert sink_multiset(candidate) == sink_multiset(reference)


#: Overload armed but shedding disabled: the observation-only config.
#: A lag SLO is set so the detector genuinely runs every epoch.
OBSERVE = OverloadConfig(max_lag_ms=10_000.0, shed_mode="off")


class TestShedOffIsInvisible:
    """Armed-but-off overload control never changes results."""

    @pytest.mark.parametrize("app", APPS)
    def test_inline_bit_identical(self, app):
        reference = run_app(app)
        candidate = run_app(app, overload=OBSERVE)
        assert_parity(reference, candidate)
        # The observation plane did run: the run report is attached.
        assert candidate.overload is not None
        assert candidate.overload.shed == 0
        assert reference.overload is None

    @pytest.mark.parametrize("app", APPS)
    def test_process_bit_identical(self, app):
        reference = run_app(app, backend=process_backend(app))
        candidate = run_app(app, backend=process_backend(app, OBSERVE))
        assert_parity(reference, candidate)
        assert candidate.overload is not None
        assert candidate.overload.shed == 0

    @pytest.mark.parametrize("app", APPS)
    def test_observed_process_matches_inline(self, app):
        inline = run_app(app, overload=OBSERVE)
        process = run_app(app, backend=process_backend(app, OBSERVE))
        assert_parity(inline, process)


class TestActiveSheddingIsDeterministic:
    """With shedding engaged, identical runs shed identical tuples."""

    #: Tight queues force sustained blocked-put pressure, walking the
    #: ladder up to the shed rung; enough epochs must elapse for the
    #: ladder to climb past batch-shrink (one rung per pressured epoch).
    PRESSURE = dict(queue_capacity=24, batch_size=8, events=800)
    SHED = OverloadConfig(shed_mode="random", shed_rate=0.5, shed_seed=9)

    def test_inline_shed_runs_repeat_exactly(self):
        first = run_app("wc", overload=self.SHED, **self.PRESSURE)
        again = run_app("wc", overload=self.SHED, **self.PRESSURE)
        assert first.overload.shed > 0  # the ladder actually engaged
        assert first.overload.shed_by_edge == again.overload.shed_by_edge
        assert_parity(first, again)

    def test_different_seeds_shed_different_tuples(self):
        base = run_app("wc", overload=self.SHED, **self.PRESSURE)
        other = run_app(
            "wc",
            overload=OverloadConfig(
                shed_mode="random", shed_rate=0.5, shed_seed=10
            ),
            **self.PRESSURE,
        )
        assert base.overload.shed > 0 and other.overload.shed > 0
        assert sink_multiset(base) != sink_multiset(other)
