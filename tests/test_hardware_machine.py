"""Unit tests for machine specifications (Table 2 constants)."""

import numpy as np
import pytest

from repro.errors import HardwareError
from repro.hardware import GB, MachineSpec, glueless_two_tray, server_a, server_b


class TestServerA:
    def test_core_count(self, machine_a):
        assert machine_a.n_sockets == 8
        assert machine_a.cores_per_socket == 18
        assert machine_a.n_cores == 144

    def test_latencies_match_table2(self, machine_a):
        assert machine_a.latency_ns(0, 0) == 50.0
        assert machine_a.latency_ns(0, 1) == pytest.approx(307.7)
        assert machine_a.latency_ns(0, 4) == pytest.approx(548.0)

    def test_bandwidths_match_table2(self, machine_a):
        assert machine_a.local_bandwidth == pytest.approx(54.3 * GB)
        assert machine_a.bandwidth(0, 2) == pytest.approx(13.2 * GB)
        assert machine_a.bandwidth(0, 7) == pytest.approx(5.8 * GB)

    def test_total_local_bandwidth(self, machine_a):
        assert machine_a.total_local_bandwidth == pytest.approx(434.4 * GB)

    def test_describe_matches_table2_rows(self, machine_a):
        row = machine_a.describe()
        assert row["one_hop_latency_ns"] == pytest.approx(307.7)
        assert row["max_hops_latency_ns"] == pytest.approx(548.0)
        assert row["total_local_bandwidth_gb_s"] == pytest.approx(434.4)
        assert row["power_governor"] == "power save"


class TestServerB:
    def test_core_count(self, machine_b):
        assert machine_b.n_cores == 64
        assert machine_b.freq_ghz == pytest.approx(2.27)

    def test_flat_remote_bandwidth(self, machine_b):
        """Server B's XNC makes remote bandwidth distance-insensitive."""
        one_hop = machine_b.bandwidth(0, 1)
        max_hop = machine_b.bandwidth(0, 7)
        assert abs(one_hop - max_hop) / one_hop < 0.05

    def test_lower_latencies_than_server_a(self, machine_a, machine_b):
        assert machine_b.latency_ns(0, 1) < machine_a.latency_ns(0, 1)
        assert machine_b.latency_ns(0, 4) < machine_a.latency_ns(0, 4)

    def test_server_a_higher_aggregate_compute(self, machine_a, machine_b):
        total_a = machine_a.n_cores * machine_a.freq_ghz
        total_b = machine_b.n_cores * machine_b.freq_ghz
        assert total_a > total_b


class TestUnits:
    def test_cpu_capacity_is_core_ns_per_second(self, machine_a):
        assert machine_a.cpu_capacity == pytest.approx(18e9)

    def test_cycles_roundtrip(self, machine_a):
        assert machine_a.cycles_to_ns(machine_a.ns_to_cycles(123.4)) == pytest.approx(
            123.4
        )

    def test_cycles_to_ns_uses_frequency(self, machine_a, machine_b):
        # The same cycle count runs faster on the higher-clocked Server B.
        assert machine_b.cycles_to_ns(1200) < machine_a.cycles_to_ns(1200)

    def test_cache_lines_rounds_up(self, machine_a):
        assert machine_a.cache_lines(1) == 1
        assert machine_a.cache_lines(64) == 1
        assert machine_a.cache_lines(65) == 2
        assert machine_a.cache_lines(0) == 0
        assert machine_a.cache_lines(-5) == 0

    def test_remote_fetch_formula2(self, machine_a):
        # ceil(180/64) = 3 lines at max-hop latency.
        assert machine_a.remote_fetch_ns(180, 0, 4) == pytest.approx(3 * 548.0)
        assert machine_a.remote_fetch_ns(180, 0, 0) == 0.0


class TestMatrices:
    def test_latency_matrix_symmetry(self, machine_a):
        matrix = machine_a.latency_matrix()
        assert np.allclose(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 50.0)

    def test_bandwidth_matrix_diagonal(self, machine_b):
        matrix = machine_b.bandwidth_matrix()
        assert np.all(np.diag(matrix) == machine_b.local_bandwidth)


class TestSubset:
    def test_subset_keeps_per_socket_characteristics(self, machine_a):
        small = machine_a.subset(2)
        assert small.n_sockets == 2
        assert small.cores_per_socket == 18
        assert small.latency_ns(0, 1) == pytest.approx(307.7)

    def test_subset_single_socket_has_no_remote(self, machine_a):
        single = machine_a.subset(1)
        assert single.topology.max_hops == 0

    def test_server_factories_accept_socket_count(self):
        assert server_a(4).n_sockets == 4
        assert server_b(2).n_sockets == 2


class TestValidation:
    def test_missing_hop_latency_rejected(self):
        with pytest.raises(HardwareError):
            MachineSpec(
                name="bad",
                topology=glueless_two_tray(4),
                cores_per_socket=4,
                freq_ghz=2.0,
                local_latency_ns=50.0,
                hop_latency_ns={1: 200.0},  # missing hop 2
                local_bandwidth=10 * GB,
                hop_bandwidth={1: 5 * GB, 2: 2 * GB},
            )

    def test_bad_frequency_rejected(self):
        with pytest.raises(HardwareError):
            MachineSpec(
                name="bad",
                topology=glueless_two_tray(4),
                cores_per_socket=4,
                freq_ghz=0.0,
                local_latency_ns=50.0,
                hop_latency_ns={1: 200.0, 2: 400.0},
                local_bandwidth=10 * GB,
                hop_bandwidth={1: 5 * GB, 2: 2 * GB},
            )

    def test_zero_cores_rejected(self):
        with pytest.raises(HardwareError):
            MachineSpec(
                name="bad",
                topology=glueless_two_tray(4),
                cores_per_socket=0,
                freq_ghz=1.0,
                local_latency_ns=50.0,
                hop_latency_ns={1: 200.0, 2: 400.0},
                local_bandwidth=10 * GB,
                hop_bandwidth={1: 5 * GB, 2: 2 * GB},
            )
