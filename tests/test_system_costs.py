"""Unit tests for the system cost structure helpers (execute/interference)."""

import pytest

from repro.core import BRISKSTREAM, SystemProfile
from repro.baselines import FLINK, STORM


class TestExecuteModel:
    def test_brisk_execute_is_identity(self):
        assert BRISKSTREAM.execute_ns(1518.4) == pytest.approx(1518.4)

    def test_storm_affine_model(self):
        """Figure 8's 5-24% band falls out of te*2 + 2500."""
        assert STORM.execute_ns(1518.4) == pytest.approx(2 * 1518.4 + 2500)
        # Small operator: Brisk/Storm execute ratio ~5%.
        parser_ratio = 136.6 / STORM.execute_ns(136.6)
        assert 0.04 < parser_ratio < 0.06
        # Large operator: ~27%.
        splitter_ratio = 1518.4 / STORM.execute_ns(1518.4)
        assert 0.2 < splitter_ratio < 0.35

    def test_flink_between_brisk_and_storm(self):
        te = 1000.0
        assert (
            BRISKSTREAM.execute_ns(te)
            < FLINK.execute_ns(te)
            < STORM.execute_ns(te)
        )


class TestInterference:
    def test_single_socket_is_free(self):
        assert STORM.interference_factor(1) == 1.0
        assert STORM.interference_factor(0) == 1.0

    def test_grows_with_sockets(self):
        factors = [STORM.interference_factor(s) for s in (1, 2, 4, 8)]
        assert factors == sorted(factors)
        assert factors[-1] > 2.0

    def test_brisk_is_immune(self):
        """Thread affinity + isolcpus: no unmanaged interference."""
        assert BRISKSTREAM.interference_factor(8) == 1.0

    def test_custom_factor(self):
        system = SystemProfile(name="x", interference_per_socket=0.5)
        assert system.interference_factor(3) == pytest.approx(2.0)


class TestFlowInterference:
    def test_spread_plan_pays_interference(self, tiny_machine):
        from repro.core.plan import ExecutionPlan, collocated_plan
        from repro.dsps import ExecutionGraph
        from repro.simulation import measure_throughput
        from tests.conftest import build_pipeline, pipeline_profiles

        topology = build_pipeline()
        profiles = pipeline_profiles(topology)
        system = SystemProfile(
            name="wobbly", others_ns=500.0, interference_per_socket=1.0
        )
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        local = collocated_plan(graph)
        spread = ExecutionPlan(
            graph=graph, placement={t.task_id: t.task_id for t in graph.tasks}
        )
        r_local = measure_throughput(
            local, profiles, tiny_machine, 1e12, system=system
        )
        r_spread = measure_throughput(
            spread, profiles, tiny_machine, 1e12, system=system
        )
        # Spreading over 4 sockets quadruples the overhead (beyond RMA).
        assert r_spread < r_local * 0.7
