"""Data-plane parity suite: pickle vs shm must be semantically invisible.

Every example application is run through the inline backend (the seed
semantics), the process backend on the default pickle plane, and the
process backend on the shared-memory plane.  All three must agree on the
sink multiset, events ingested and per-task tuple counts — the data plane
may only change *how* bytes move, never *which* tuples arrive.
"""

from collections import Counter as Multiset

import pytest

from repro.apps import load_application
from repro.dsps import LocalEngine
from repro.errors import ExecutionError
from repro.metrics import MetricsRegistry
from repro.runtime import ProcessPoolBackend, resolve_backend, shm_available

EVENTS = 300

#: Replication configs under which each app's semantics are deterministic
#: across backends (see tests/test_runtime_backends.py for the rationale).
REPLICATION = {
    "wc": {"spout": 1, "parser": 2, "splitter": 2, "counter": 2, "sink": 1},
    "fd": {"spout": 1, "parser": 1, "predictor": 2, "sink": 1},
    "sd": {
        "spout": 1,
        "parser": 1,
        "moving_average": 2,
        "spike_detector": 2,
        "sink": 1,
    },
    "lr": None,  # parallelism hints (all 1); needs the ordered backend
}

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="no POSIX shared memory"
)


def run_app(app, *, backend="inline", registry=None, **kwargs):
    topology, _profiles = load_application(app)
    topology.component("sink").template.keep_samples = 10**6
    engine = LocalEngine(
        topology,
        replication=REPLICATION[app],
        backend=backend,
        registry=registry,
        **kwargs,
    )
    return engine.run(EVENTS)


def process_backend(app, dataplane, **kwargs):
    ordered = app == "lr"
    return ProcessPoolBackend(
        n_workers=2, ordered=ordered, dataplane=dataplane, **kwargs
    )


def sink_multiset(result):
    return Multiset(
        tuple(item.values)
        for sinks in result.sinks.values()
        for sink in sinks
        for item in sink.samples
    )


def task_counts(result):
    return {
        task_id: (stats.tuples_in, stats.tuples_out)
        for task_id, stats in result.task_stats.items()
    }


def assert_parity(reference, candidate):
    assert candidate.events_ingested == reference.events_ingested
    assert candidate.sink_received() == reference.sink_received()
    assert task_counts(candidate) == task_counts(reference)
    assert sink_multiset(candidate) == sink_multiset(reference)


class TestDataplaneResolution:
    def test_resolve_accepts_both_planes(self):
        assert resolve_backend("process", dataplane="pickle").dataplane == "pickle"
        assert resolve_backend("process", dataplane="shm").dataplane == "shm"

    def test_resolve_rejects_unknown_plane(self):
        with pytest.raises(ExecutionError, match="unknown dataplane"):
            resolve_backend("process", dataplane="rdma")

    def test_backend_rejects_unknown_plane(self):
        with pytest.raises(ExecutionError, match="unknown dataplane"):
            ProcessPoolBackend(dataplane="zeromq")

    def test_inline_ignores_dataplane(self):
        # The inline backend has no inter-process edges; selecting a data
        # plane must be accepted (and ignored) so CLI flags compose.
        result = run_app("wc", backend="inline", dataplane="shm")
        assert result.sink_received() == EVENTS * 10


class TestPickleShmParity:
    """Same run, byte-identical sink state, on every app."""

    @pytest.mark.parametrize("app", ["wc", "fd", "sd", "lr"])
    @needs_shm
    def test_shm_matches_inline(self, app):
        reference = run_app(app)
        candidate = run_app(app, backend=process_backend(app, "shm"))
        assert_parity(reference, candidate)

    @pytest.mark.parametrize("app", ["wc", "fd", "sd", "lr"])
    @needs_shm
    def test_shm_matches_pickle(self, app):
        pickled = run_app(app, backend=process_backend(app, "pickle"))
        shm = run_app(app, backend=process_backend(app, "shm"))
        assert_parity(pickled, shm)


class TestStringDictParity:
    """Dictionary encoding must be semantically invisible on every plane.

    The matrix runs each app under ``string_dict`` off and auto, on both
    the pickle and shm planes with vectorized kernels on, and compares
    sink multisets, ingest counts and per-task tuple counts against the
    inline reference.  ``auto`` promotes WC's word edge and FD's trace
    edge mid-run, so the matrix exercises the raw->dict transition, the
    pickle plane's ``"D"``->``"s"`` decay, and LR's no-op path (integer
    schemas never consult the dictionary machinery).
    """

    @pytest.fixture(scope="class")
    def references(self):
        return {app: run_app(app) for app in ("wc", "fd", "sd", "lr")}

    @pytest.mark.parametrize("app", ["wc", "fd", "sd", "lr"])
    @pytest.mark.parametrize("mode", ["off", "auto"])
    @needs_shm
    def test_shm_dict_matches_inline(self, app, mode, references):
        candidate = run_app(
            app,
            backend=process_backend(
                app, "shm", vectorized="on", string_dict=mode
            ),
        )
        assert_parity(references[app], candidate)

    @pytest.mark.parametrize("app", ["wc", "fd", "sd", "lr"])
    @pytest.mark.parametrize("mode", ["off", "auto"])
    def test_pickle_dict_matches_inline(self, app, mode, references):
        candidate = run_app(
            app,
            backend=process_backend(
                app, "pickle", vectorized="on", string_dict=mode
            ),
        )
        assert_parity(references[app], candidate)

    @needs_shm
    def test_forced_dict_matches_inline(self, references):
        # ``on`` skips the observation window: every string column is
        # promoted on its first batch, including low-cardinality losers.
        candidate = run_app(
            "wc",
            backend=process_backend(
                "wc", "shm", vectorized="on", string_dict="on"
            ),
        )
        assert_parity(references["wc"], candidate)

    def test_backend_rejects_unknown_mode(self):
        with pytest.raises(ExecutionError, match="unknown string_dict"):
            ProcessPoolBackend(string_dict="zstd")

    def test_resolve_rejects_unknown_mode(self):
        with pytest.raises(ExecutionError, match="unknown string_dict"):
            resolve_backend("process", string_dict="zstd")


class TestStringDictRecovery:
    """Producer and consumer dictionaries reset in lockstep on restart.

    Codecs are built inside ``ShmRingChannel.connect()`` in the worker
    process, so a Supervisor retry rebuilds both sides from scratch —
    no stale decode table can survive a crash.  The sink multiset after
    an injected worker crash + replay must be bit-identical to a
    fault-free dict-encoded run.
    """

    @needs_shm
    def test_dict_state_resets_exactly_once_under_crash_retry(self):
        from repro.runtime import FaultPlan

        backend = process_backend(
            "wc", "shm", vectorized="on", string_dict="on"
        )
        reference = run_app("wc", backend=backend)
        faulty = run_app(
            "wc",
            backend=process_backend(
                "wc", "shm", vectorized="on", string_dict="on"
            ),
            fault_plan=FaultPlan(seed=3, kinds=("crash",), at_tuple=20),
            recovery_policy="retry",
        )
        assert faulty.recovery.completed is True
        assert faulty.recovery.restarts >= 1
        assert_parity(reference, faulty)


class TestDataplaneMetrics:
    @needs_shm
    def test_shm_run_reports_inline_bytes(self):
        registry = MetricsRegistry()
        result = run_app(
            "wc", backend=process_backend("wc", "shm"), registry=registry
        )
        assert result.sink_received() == EVENTS * 10
        counters = registry.snapshot()["counters"]
        assert counters["runtime.dataplane.bytes_inline"] > 0
        assert counters["runtime.run.dataplane_bytes"] > 0
        # The sealed batches of every app edge are scalar-only; the codec
        # must not be falling back to pickle on the WC hot path.
        assert counters.get("runtime.dataplane.codec_fallbacks", 0) == 0

    def test_pickle_run_reports_dataplane_bytes(self):
        registry = MetricsRegistry()
        run_app("wc", backend=process_backend("wc", "pickle"), registry=registry)
        counters = registry.snapshot()["counters"]
        assert counters["runtime.run.pickled_bytes"] > 0
        assert (
            counters["runtime.run.dataplane_bytes"]
            == counters["runtime.run.pickled_bytes"]
        )

    @needs_shm
    def test_dict_run_publishes_dict_counters(self):
        registry = MetricsRegistry()
        result = run_app(
            "wc",
            backend=process_backend(
                "wc", "shm", vectorized="on", string_dict="on"
            ),
            registry=registry,
        )
        assert result.sink_received() == EVENTS * 10
        counters = registry.snapshot()["counters"]
        assert counters["runtime.dataplane.dict.promotions"] >= 1
        assert counters["runtime.dataplane.dict.columns"] >= 1
        assert counters["runtime.dataplane.dict.pages"] >= 1
        assert counters["runtime.dataplane.dict.bytes"] > 0
        assert counters.get("runtime.dataplane.codec_fallbacks", 0) == 0
        # Dict traffic still counts toward the plane's byte totals.
        assert (
            counters["runtime.dataplane.bytes_inline"]
            + counters["runtime.dataplane.bytes_oob"]
            >= counters["runtime.dataplane.dict.bytes"]
        )

    @needs_shm
    def test_dict_off_publishes_no_dict_counters(self):
        registry = MetricsRegistry()
        run_app(
            "wc",
            backend=process_backend(
                "wc", "shm", vectorized="on", string_dict="off"
            ),
            registry=registry,
        )
        counters = registry.snapshot()["counters"]
        assert counters.get("runtime.dataplane.dict.promotions", 0) == 0
        assert counters.get("runtime.dataplane.dict.bytes", 0) == 0
