"""Differential tests: IncrementalEvaluator vs batch ``evaluate``.

The incremental evaluator must be *bit-identical* to the batch model under
every apply/undo/reset sequence — the B&B search relies on this to prune
with exact bounds.  These tests replay long randomized placement histories
on all four benchmark applications and compare every ``ModelResult`` field
after every step.
"""

from __future__ import annotations

import random

import pytest

from repro.core import PerformanceModel, empty_plan
from repro.core.constraints import resource_report
from repro.dsps import ExecutionGraph
from repro.hardware import server_a

from tests.conftest import build_pipeline, pipeline_profiles

APPS = ("wc", "fd", "sd", "lr")


@pytest.fixture(scope="module")
def machine():
    return server_a(4)


def _bundle(app: str):
    from repro.apps import load_application

    return load_application(app)


def _exact_match(result_a, result_b, machine):
    """Assert two ModelResults are bitwise identical."""
    assert result_a.throughput == result_b.throughput
    assert result_a.bottlenecks == result_b.bottlenecks
    assert set(result_a.rates) == set(result_b.rates)
    for task_id, a in result_a.rates.items():
        b = result_b.rates[task_id]
        assert (
            a.input_rate,
            a.capacity,
            a.processed_rate,
            a.te_ns,
            a.overhead_ns,
            a.tf_ns,
            a.oversupplied,
            a.output_rate,
            dict(a.output_rates),
        ) == (
            b.input_rate,
            b.capacity,
            b.processed_rate,
            b.te_ns,
            b.overhead_ns,
            b.tf_ns,
            b.oversupplied,
            b.output_rate,
            dict(b.output_rates),
        ), f"task {task_id} diverged"
    assert (result_a.interconnect_bytes == result_b.interconnect_bytes).all()


class TestRandomizedEquivalence:
    """≥200 randomized apply/undo sequences across the four apps."""

    @pytest.mark.parametrize("app", APPS)
    def test_apply_undo_reset_matches_batch(self, app, machine):
        topology, profiles = _bundle(app)
        model = PerformanceModel(profiles, machine)
        graph = ExecutionGraph(topology, {n: 2 for n in topology.components})
        rate = 50_000.0
        evaluator = model.evaluator(graph, rate)
        rng = random.Random(hash(app) & 0xFFFF)
        sockets = list(machine.sockets)
        task_ids = [t.task_id for t in graph.tasks]
        placement: dict[int, int] = {}
        undo_depth = 0

        def check():
            plan = empty_plan(graph).assign(placement)
            batch = model.evaluate(plan, rate, bounding=True)
            _exact_match(evaluator.result(), batch, machine)
            report = resource_report(plan, batch, machine, model.profiles)
            assert evaluator.check().feasible == report.is_feasible

        check()  # empty placement
        for step in range(80):
            action = rng.random()
            if action < 0.45 or undo_depth == 0:
                # (re)place a random task via apply
                task_id = rng.choice(task_ids)
                socket = rng.choice(sockets + [None])
                evaluator.apply(task_id, socket)
                if socket is None:
                    placement.pop(task_id, None)
                else:
                    placement[task_id] = socket
                undo_depth += 1
            elif action < 0.85:
                evaluator.undo()
                undo_depth -= 1
                # rebuild the shadow placement from the evaluator's truth
                placement = evaluator.placement()
            else:
                # jump to an unrelated random placement
                placement = {
                    tid: rng.choice(sockets)
                    for tid in task_ids
                    if rng.random() < 0.7
                }
                evaluator.reset(placement)
                undo_depth = 0
            check()

    def test_complete_plan_matches_unbounded_evaluate(self, machine):
        """On a complete plan the evaluator equals plain ``evaluate``."""
        topology, profiles = _bundle("wc")
        model = PerformanceModel(profiles, machine)
        graph = ExecutionGraph(topology, {n: 2 for n in topology.components})
        rng = random.Random(7)
        evaluator = model.evaluator(graph, 80_000.0)
        for _ in range(20):
            placement = {
                t.task_id: rng.choice(list(machine.sockets)) for t in graph.tasks
            }
            evaluator.reset(placement)
            plan = empty_plan(graph).assign(placement)
            batch = model.evaluate(plan, 80_000.0)
            _exact_match(evaluator.result(), batch, machine)

    def test_undo_restores_exact_state(self, machine):
        topology, profiles = _bundle("sd")
        model = PerformanceModel(profiles, machine)
        graph = ExecutionGraph(topology, {n: 2 for n in topology.components})
        evaluator = model.evaluator(graph, 60_000.0)
        rng = random.Random(11)
        baseline = {
            t.task_id: rng.choice(list(machine.sockets)) for t in graph.tasks
        }
        evaluator.reset(baseline)
        before = evaluator.result()
        for _ in range(50):
            task_id = rng.choice(list(baseline))
            evaluator.apply(task_id, rng.choice(list(machine.sockets)))
            evaluator.undo()
        _exact_match(evaluator.result(), before, machine)

    def test_counters_track_evaluation_modes(self, machine):
        topology = build_pipeline()
        profiles = pipeline_profiles(topology)
        model = PerformanceModel(profiles, machine)
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        evaluator = model.evaluator(graph, 1e5)
        start_full = evaluator.full_evals
        # Moving the spout forces a full re-evaluation.
        spout_id = graph.tasks_of("spout")[0].task_id
        evaluator.apply(spout_id, 1)
        assert evaluator.full_evals == start_full + 1
        # Moving the sink is a pure downstream delta.
        start_incremental = evaluator.incremental_evals
        sink_id = graph.tasks_of("sink")[0].task_id
        evaluator.apply(sink_id, 1)
        assert evaluator.incremental_evals == start_incremental + 1


class TestEvaluatorFactory:
    def test_rejects_nonpositive_rate(self, machine):
        topology = build_pipeline()
        model = PerformanceModel(pipeline_profiles(topology), machine)
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        from repro.errors import PlanError

        with pytest.raises(PlanError):
            model.evaluator(graph, 0.0)

    def test_undo_on_empty_stack_raises(self, machine):
        topology = build_pipeline()
        model = PerformanceModel(pipeline_profiles(topology), machine)
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        evaluator = model.evaluator(graph, 1e5)
        from repro.errors import PlanError

        with pytest.raises(PlanError):
            evaluator.undo()
