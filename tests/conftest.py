"""Shared fixtures: small machines, a synthetic pipeline, cached apps."""

from __future__ import annotations

import pytest

from repro.core import OperatorProfile, PerformanceModel, ProfileSet
from repro.dsps import (
    FlatMapOperator,
    IterableSpout,
    MapOperator,
    Sink,
    TopologyBuilder,
)
from repro.hardware import GB, MachineSpec, glueless_two_tray, server_a, server_b


@pytest.fixture(scope="session")
def machine_a() -> MachineSpec:
    """The paper's Server A (HUAWEI KunLun)."""
    return server_a()


@pytest.fixture(scope="session")
def machine_b() -> MachineSpec:
    """The paper's Server B (HP DL980 G7)."""
    return server_b()


@pytest.fixture(scope="session")
def tiny_machine() -> MachineSpec:
    """A small 4-socket machine that keeps optimizer tests fast."""
    return MachineSpec(
        name="tiny (4x4)",
        topology=glueless_two_tray(4),
        cores_per_socket=4,
        freq_ghz=2.0,
        local_latency_ns=50.0,
        hop_latency_ns={1: 200.0, 2: 400.0},
        local_bandwidth=20.0 * GB,
        hop_bandwidth={1: 8.0 * GB, 2: 4.0 * GB},
    )


def build_pipeline(selectivity: float = 2.0, parallelism: int = 1):
    """A synthetic 4-stage pipeline: spout -> stage -> fan -> sink."""
    builder = TopologyBuilder("pipeline")
    builder.set_spout("spout", IterableSpout([("x", 1)] * 100), parallelism)
    builder.add_operator(
        "stage", MapOperator(lambda v: v), parallelism
    ).shuffle_from("spout")
    builder.add_operator(
        "fan",
        FlatMapOperator(lambda v: [v] * int(selectivity)),
        parallelism,
    ).shuffle_from("stage")
    builder.add_sink("sink", Sink(), parallelism).shuffle_from("fan")
    return builder.build()


def pipeline_profiles(topology, fan_selectivity: float = 2.0) -> ProfileSet:
    """Hand-written profiles for the synthetic pipeline."""
    return ProfileSet(
        topology,
        {
            "spout": OperatorProfile(
                "spout", 200, 100, {"default": 100}, {"default": 1.0}
            ),
            "stage": OperatorProfile(
                "stage", 400, 150, {"default": 100}, {"default": 1.0}
            ),
            "fan": OperatorProfile(
                "fan", 800, 250, {"default": 60}, {"default": fan_selectivity}
            ),
            "sink": OperatorProfile("sink", 100, 40, {}, {}),
        },
    )


@pytest.fixture()
def pipeline_topology():
    return build_pipeline()


@pytest.fixture()
def pipeline(pipeline_topology):
    """(topology, profiles) for the synthetic pipeline."""
    return pipeline_topology, pipeline_profiles(pipeline_topology)


@pytest.fixture()
def pipeline_model(pipeline, tiny_machine) -> PerformanceModel:
    topology, profiles = pipeline
    return PerformanceModel(profiles, tiny_machine)


@pytest.fixture(scope="session")
def wc_app():
    """Cached (topology, profiles) of the real Word Count application."""
    from repro.apps import load_application

    return load_application("wc")


@pytest.fixture(scope="session")
def lr_app():
    """Cached (topology, profiles) of the Linear Road application."""
    from repro.apps import load_application

    return load_application("lr")
