"""Unit tests for the discrete-event latency simulator."""

import pytest

from repro.core import SystemProfile, collocated_plan
from repro.core.plan import ExecutionPlan
from repro.dsps import ExecutionGraph
from repro.errors import SimulationError
from repro.simulation import DiscreteEventSimulator, LatencyStats

from tests.conftest import build_pipeline, pipeline_profiles


@pytest.fixture()
def setup(tiny_machine):
    topology = build_pipeline()
    profiles = pipeline_profiles(topology)
    return topology, profiles, tiny_machine


def _plan(topology, replication=None):
    graph = ExecutionGraph(
        topology, replication or {n: 1 for n in topology.components}
    )
    return collocated_plan(graph)


class TestLatencyStats:
    def test_percentiles(self):
        stats = LatencyStats(samples_ns=[float(i) for i in range(1, 101)])
        assert stats.percentile(50) == 50.0
        assert stats.percentile(99) == 99.0
        assert stats.p99_ms() == pytest.approx(99.0 / 1e6)

    def test_mean(self):
        stats = LatencyStats(samples_ns=[1e6, 3e6])
        assert stats.mean_ms() == pytest.approx(2.0)

    def test_cdf_monotone(self):
        stats = LatencyStats(samples_ns=[float(i) for i in range(1000)])
        cdf = stats.cdf(points=50)
        latencies = [x for x, _ in cdf]
        fractions = [y for _, y in cdf]
        assert latencies == sorted(latencies)
        assert fractions[-1] == 1.0

    def test_empty_samples_rejected(self):
        with pytest.raises(SimulationError):
            LatencyStats().percentile(50)


class TestDesRuns:
    def test_delivers_expected_tuple_count(self, setup):
        topology, profiles, machine = setup
        des = DiscreteEventSimulator(profiles, machine, seed=1)
        result = des.run(_plan(topology), ingress_rate=1e5, max_events=2000)
        assert result.events_generated == 2000
        # fan selectivity 2 -> the sink sees ~2 tuples per event.
        assert result.tuples_delivered == pytest.approx(4000, rel=0.05)

    def test_latency_positive_and_bounded(self, setup):
        topology, profiles, machine = setup
        des = DiscreteEventSimulator(profiles, machine, seed=1)
        result = des.run(_plan(topology), ingress_rate=1e5, max_events=2000)
        assert result.latency.percentile(1) > 0
        assert result.latency.p99_ms() < 1e3

    def test_deterministic_by_seed(self, setup):
        topology, profiles, machine = setup
        a = DiscreteEventSimulator(profiles, machine, seed=7).run(
            _plan(topology), 1e5, max_events=500
        )
        b = DiscreteEventSimulator(profiles, machine, seed=7).run(
            _plan(topology), 1e5, max_events=500
        )
        assert a.latency.samples_ns == b.latency.samples_ns

    def test_saturation_raises_latency(self, setup):
        """Below capacity latency is batching-bounded; above it, queueing
        dominates (the single-replica pipeline caps near ~2.2M events/s)."""
        topology, profiles, machine = setup
        plan = _plan(topology)
        des = DiscreteEventSimulator(profiles, machine, seed=2)
        light = des.run(plan, ingress_rate=2e5, max_events=3000)
        heavy = des.run(plan, ingress_rate=8e6, max_events=3000)
        assert heavy.latency.percentile(95) > light.latency.percentile(95)

    def test_flush_timeout_bounds_low_rate_latency(self, setup):
        topology, profiles, machine = setup
        plan = _plan(topology)
        slow = DiscreteEventSimulator(
            profiles, machine, flush_timeout_ns=50e6, seed=2
        ).run(plan, ingress_rate=2e4, max_events=2000)
        fast = DiscreteEventSimulator(
            profiles, machine, flush_timeout_ns=0.2e6, seed=2
        ).run(plan, ingress_rate=2e4, max_events=2000)
        assert fast.latency.percentile(95) < slow.latency.percentile(95)

    def test_remote_placement_higher_latency(self, setup):
        topology, profiles, machine = setup
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        local = collocated_plan(graph)
        remote = ExecutionPlan(graph=graph, placement={0: 0, 1: 2, 2: 0, 3: 2})
        des = DiscreteEventSimulator(profiles, machine, seed=3)
        r_local = des.run(local, 1e5, max_events=2000)
        r_remote = des.run(remote, 1e5, max_events=2000)
        assert r_remote.latency.mean_ms() > r_local.latency.mean_ms()

    def test_bigger_buffers_higher_saturated_latency(self, setup):
        """Table 5's mechanism: saturated latency scales with buffering."""
        topology, profiles, machine = setup
        plan = _plan(topology)
        small = DiscreteEventSimulator(
            profiles, machine, queue_capacity=256, seed=4
        ).run(plan, 1e7, max_events=4000)
        large = DiscreteEventSimulator(
            profiles, machine, queue_capacity=16384, seed=4
        ).run(plan, 1e7, max_events=4000)
        assert large.latency.p99_ms() > small.latency.p99_ms()

    def test_replicated_plan_runs(self, setup):
        topology, profiles, machine = setup
        plan = _plan(
            topology, {"spout": 1, "stage": 2, "fan": 2, "sink": 2}
        )
        des = DiscreteEventSimulator(profiles, machine, seed=5)
        result = des.run(plan, 1e5, max_events=1000)
        assert result.tuples_delivered > 0

    def test_throughput_reported(self, setup):
        topology, profiles, machine = setup
        des = DiscreteEventSimulator(profiles, machine, seed=6)
        result = des.run(_plan(topology), 1e5, max_events=1000)
        assert result.throughput > 0


class TestValidation:
    def test_compressed_plan_rejected(self, setup):
        topology, profiles, machine = setup
        graph = ExecutionGraph(
            topology, {"spout": 1, "stage": 1, "fan": 4, "sink": 1}, group_size=2
        )
        des = DiscreteEventSimulator(profiles, machine)
        with pytest.raises(SimulationError, match="replica-granularity"):
            des.run(collocated_plan(graph), 1e5)

    def test_incomplete_plan_rejected(self, setup):
        topology, profiles, machine = setup
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        from repro.core.plan import empty_plan

        with pytest.raises(SimulationError):
            DiscreteEventSimulator(profiles, machine).run(empty_plan(graph), 1e5)

    def test_tiny_queue_rejected(self, setup):
        topology, profiles, machine = setup
        with pytest.raises(SimulationError):
            DiscreteEventSimulator(profiles, machine, queue_capacity=4)

    def test_bad_parameters_rejected(self, setup):
        topology, profiles, machine = setup
        des = DiscreteEventSimulator(profiles, machine)
        with pytest.raises(SimulationError):
            des.run(_plan(topology), 0.0)
        with pytest.raises(SimulationError):
            des.run(_plan(topology), 1e5, max_events=0)
