"""Tests for the unified lowering (repro.runtime.lowering)."""

import pytest

from repro.apps import build_wordcount
from repro.core.plan import collocated_plan, empty_plan
from repro.dsps.graph import ExecutionGraph
from repro.errors import PlanError
from repro.runtime import (
    DEFAULT_QUEUE_BUDGET,
    RuntimeSpec,
    instantiate_tasks,
    lower_graph,
    lower_plan,
)

REPLICATION = {"spout": 1, "parser": 2, "splitter": 2, "counter": 3, "sink": 1}


@pytest.fixture()
def topology():
    return build_wordcount()


@pytest.fixture()
def graph(topology):
    return ExecutionGraph(topology, REPLICATION, group_size=1)


class TestLowerGraph:
    def test_tasks_cover_graph_in_topological_order(self, topology, graph):
        spec = lower_graph(topology, graph)
        assert [rt.task_id for rt in spec.tasks] == [
            t.task_id for t in graph.topological_task_order()
        ]
        assert len(spec.edges) == len(graph.edges)

    def test_spout_and_sink_flags(self, topology, graph):
        spec = lower_graph(topology, graph)
        assert [rt.component for rt in spec.spout_tasks] == ["spout"]
        assert all(rt.component == "sink" for rt in spec.sink_tasks)

    def test_unbounded_by_default(self, topology, graph):
        spec = lower_graph(topology, graph)
        assert not spec.bounded
        assert all(c is None for c in spec.queue_capacity.values())

    def test_uniform_capacity(self, topology, graph):
        spec = lower_graph(topology, graph, queue_capacity=128)
        assert spec.bounded
        assert set(spec.queue_capacity.values()) == {128}

    def test_budget_split_over_in_edges(self, topology, graph):
        spec = lower_graph(topology, graph, batch_size=64, queue_budget=512)
        for edge in graph.edges:
            n_in = len(graph.incoming(edge.consumer))
            expected = max(64, 512 // n_in)
            assert spec.queue_capacity[(edge.producer, edge.consumer)] == expected

    def test_budget_floors_at_batch_size(self, topology):
        # Many producers into one counter replica: the even split would drop
        # below one batch, so the floor must kick in.
        graph = ExecutionGraph(
            topology,
            {"spout": 1, "parser": 1, "splitter": 8, "counter": 1, "sink": 1},
            group_size=1,
        )
        spec = lower_graph(topology, graph, batch_size=64, queue_budget=128)
        counter_task = graph.tasks_of("counter")[0].task_id
        for edge in graph.incoming(counter_task):
            assert spec.queue_capacity[(edge.producer, edge.consumer)] == 64

    def test_capacity_and_budget_are_exclusive(self, topology, graph):
        with pytest.raises(PlanError):
            lower_graph(topology, graph, queue_capacity=128, queue_budget=512)

    def test_capacity_below_batch_rejected(self, topology, graph):
        with pytest.raises(PlanError):
            lower_graph(topology, graph, batch_size=64, queue_capacity=32)
        with pytest.raises(PlanError):
            lower_graph(topology, graph, batch_size=64, queue_budget=32)

    def test_foreign_graph_rejected(self, topology, graph):
        with pytest.raises(PlanError):
            lower_graph(build_wordcount(), graph)

    def test_routes_follow_topology_edge_order(self, topology, graph):
        spec = lower_graph(topology, graph)
        for rt in spec.tasks:
            expected = [
                (e.stream, tuple(t.task_id for t in graph.tasks_of(e.consumer)))
                for e in topology.outgoing(rt.component)
            ]
            assert [(r.stream, r.consumers) for r in rt.routes] == expected

    def test_route_modes(self, topology, graph):
        spec = lower_graph(topology, graph)
        modes = {
            (rt.component, route.stream): route.mode
            for rt in spec.tasks
            for route in rt.routes
        }
        # WC uses shuffle and fields groupings only -> everything unicast.
        assert set(modes.values()) == {"pick"}


class TestLowerPlan:
    def test_requires_complete_plan(self, graph):
        with pytest.raises(PlanError):
            lower_plan(empty_plan(graph))

    def test_placement_reaches_tasks(self, graph):
        plan = collocated_plan(graph, socket=2)
        spec = lower_plan(plan)
        assert {rt.socket for rt in spec.tasks} == {2}
        assert spec.socket_groups() == {2: [rt.task_id for rt in spec.tasks]}

    def test_bounded_by_default_budget(self, graph):
        spec = lower_plan(collocated_plan(graph))
        assert spec.bounded
        for edge in graph.edges:
            n_in = len(graph.incoming(edge.consumer))
            assert spec.queue_capacity[(edge.producer, edge.consumer)] == max(
                64, DEFAULT_QUEUE_BUDGET // n_in
            )

    def test_uniform_capacity_overrides_budget(self, graph):
        spec = lower_plan(collocated_plan(graph), queue_capacity=256)
        assert set(spec.queue_capacity.values()) == {256}

    def test_plan_socket_groups_helper(self, graph):
        plan = collocated_plan(graph, socket=1)
        groups = plan.socket_groups()
        assert list(groups) == [1]
        assert groups[1] == sorted(t.task_id for t in graph.tasks)


class TestInstantiate:
    def test_one_prepared_instance_per_task(self, topology, graph):
        spec = lower_graph(topology, graph)
        instances = instantiate_tasks(spec)
        assert set(instances) == {t.task_id for t in graph.tasks}
        # Instances are clones: the same component's replicas are distinct
        # objects and none of them is the topology's template.
        counters = [
            instances[t.task_id] for t in graph.tasks_of("counter")
        ]
        assert len({id(c) for c in counters}) == len(counters)
        template = topology.component("counter").template
        assert all(c is not template for c in counters)

    def test_describe_mentions_every_task(self, topology, graph):
        spec = lower_graph(topology, graph, queue_capacity=128)
        text = spec.describe()
        assert f"{len(spec.tasks)} tasks" in text
        assert f"{len(spec.edges)} queues" in text
        assert isinstance(spec, RuntimeSpec)
