"""Unit tests for the columnar batch layer (docs/vectorized.md).

Covers the zero-copy/copy contract — wire-decoded batches are read-only
views over the payload bytes, tuple-built batches are writable copies —
plus schema negotiation, scalar interop fidelity and the accounting
helpers the executors rely on.
"""

import pickle

import numpy as np
import pytest

from repro.dsps.tuples import StreamTuple
from repro.runtime.dataplane import (
    BatchCodec,
    ColumnBatch,
    DictColumn,
    columns_available,
    schema_accepts,
)
from repro.runtime.dataplane.columns import (
    COLUMN_DTYPES,
    _FIXED_PAYLOAD_BYTES,
    schema_dtypes,
    take,
)

pytestmark = pytest.mark.skipif(
    not columns_available(), reason="numpy unavailable"
)

EDGE = (0, 1)


def make_tuples(rows, stream="default", source_task=3):
    return [
        StreamTuple(
            values=row,
            stream=stream,
            source_task=source_task,
            event_time_ns=float(i),
        )
        for i, row in enumerate(rows)
    ]


MIXED_ROWS = [(i, float(i) / 3, i % 2 == 0, f"w{i}", bytes([i])) for i in range(16)]


class TestFromTuples:
    def test_round_trip_preserves_values_and_types(self):
        original = make_tuples(MIXED_ROWS)
        batch = ColumnBatch.from_tuples(original)
        assert batch is not None
        assert batch.schema == "qd?sy"
        assert len(batch) == len(original)
        for got, want in zip(batch.to_tuples(), original):
            assert got.values == want.values
            assert tuple(type(v) for v in got.values) == tuple(
                type(v) for v in want.values
            )
            assert got.event_time_ns == want.event_time_ns

    def test_columns_are_writable_copies(self):
        original = make_tuples([(1,), (2,), (3,)])
        batch = ColumnBatch.from_tuples(original)
        batch.columns[0][0] = 99  # must not raise, must not alias inputs
        assert original[0].values == (1,)

    def test_empty_batch_declines(self):
        assert ColumnBatch.from_tuples([]) is None

    def test_mixed_stream_declines(self):
        tuples = make_tuples([(1,)], stream="a") + make_tuples(
            [(2,)], stream="b"
        )
        assert ColumnBatch.from_tuples(tuples) is None

    def test_mixed_source_declines(self):
        tuples = make_tuples([(1,)], source_task=1) + make_tuples(
            [(2,)], source_task=2
        )
        assert ColumnBatch.from_tuples(tuples) is None

    def test_ragged_arity_declines(self):
        assert ColumnBatch.from_tuples(make_tuples([(1, 2), (3,)])) is None

    def test_bool_in_int_column_declines(self):
        # bool is an int subclass; silent coercion would change types.
        assert ColumnBatch.from_tuples(make_tuples([(1,), (True,)])) is None

    def test_out_of_range_int_declines(self):
        assert ColumnBatch.from_tuples(make_tuples([(2**80,)])) is None

    def test_unsupported_value_declines(self):
        assert ColumnBatch.from_tuples(make_tuples([({"k": 1},)])) is None

    def test_from_tuples_bursts_back_to_original_list(self):
        original = make_tuples([(1,), (2,)])
        batch = ColumnBatch.from_tuples(original)
        assert batch.to_tuples() is not None
        assert batch.to_tuples()[0] is original[0]


class TestWireZeroCopy:
    def test_decode_columns_views_share_payload_memory(self):
        codec = BatchCodec({EDGE: "qd?"})
        original = make_tuples(
            [(i, float(i), i % 2 == 0) for i in range(32)]
        )
        payload = codec.encode_columns(EDGE, ColumnBatch.from_tuples(original))
        batch = codec.decode_columns(payload)
        assert batch is not None
        wire = np.frombuffer(payload, dtype=np.uint8)
        for code, column in zip(batch.schema, batch.columns):
            assert column.dtype == np.dtype(COLUMN_DTYPES[code])
            assert np.shares_memory(column, wire)
        assert np.shares_memory(batch.event_times, wire)

    def test_decode_columns_views_are_read_only(self):
        codec = BatchCodec({EDGE: "q"})
        payload = codec.encode_columns(
            EDGE, ColumnBatch.from_tuples(make_tuples([(1,), (2,)]))
        )
        batch = codec.decode_columns(payload)
        with pytest.raises(ValueError):
            batch.columns[0][0] = 99

    def test_encode_columns_bytes_match_scalar_encode(self):
        codec_a = BatchCodec({EDGE: "qd?sy"})
        codec_b = BatchCodec({EDGE: "qd?sy"})
        original = make_tuples(MIXED_ROWS)
        scalar = codec_a.encode(EDGE, original)
        columnar = codec_b.encode_columns(
            EDGE, ColumnBatch.from_tuples(original)
        )
        assert scalar == columnar

    def test_decode_columns_refuses_pickle_payload(self):
        codec = BatchCodec({EDGE: "q"})
        payload = codec.encode(EDGE, make_tuples([(None,)]))  # pickled
        assert codec.decode_columns(payload) is None
        assert codec.decode(payload)[0].values == (None,)

    def test_wire_round_trip_is_lossless(self):
        codec = BatchCodec({EDGE: "qd?sy"})
        original = make_tuples(MIXED_ROWS)
        payload = codec.encode_columns(EDGE, ColumnBatch.from_tuples(original))
        for got, want in zip(
            codec.decode_columns(payload).to_tuples(), original
        ):
            assert got.values == want.values
            assert tuple(type(v) for v in got.values) == tuple(
                type(v) for v in want.values
            )
            assert got.event_time_ns == want.event_time_ns


class TestBuildAndLineage:
    def test_build_canonicalizes_dtypes(self):
        batch = ColumnBatch.build("s1", "qd", [[1, 2], [0.5, 1.5]])
        assert batch.columns[0].dtype == np.dtype("<i8")
        assert batch.columns[1].dtype == np.dtype("<f8")

    def test_build_rejects_ragged_columns(self):
        with pytest.raises(ValueError):
            ColumnBatch.build("s1", "qq", [[1, 2], [3]])

    def test_build_rejects_wrong_column_count(self):
        with pytest.raises(ValueError):
            ColumnBatch.build("s1", "qq", [[1, 2]])

    def test_build_rejects_bad_index_length(self):
        with pytest.raises(ValueError):
            ColumnBatch.build("s1", "q", [[1, 2]], index=[0])

    def test_stamp_from_propagates_times_through_index(self):
        parent = ColumnBatch.from_tuples(make_tuples([(1,), (2,), (3,)]))
        out = ColumnBatch.build("s1", "q", [[20, 10]], index=[1, 0])
        out.stamp_from(parent, source_task=7)
        assert out.source_task == 7
        assert out.event_times.tolist() == [1.0, 0.0]
        burst = out.to_tuples()
        assert [t.event_time_ns for t in burst] == [1.0, 0.0]
        assert all(t.source_task == 7 for t in burst)

    def test_stamp_from_identity_requires_matching_length(self):
        parent = ColumnBatch.from_tuples(make_tuples([(1,), (2,)]))
        out = ColumnBatch.build("s1", "q", [[1, 2, 3]])  # no index, 3 != 2
        with pytest.raises(ValueError):
            out.stamp_from(parent, source_task=7)


class TestChunksAndAccounting:
    def test_chunks_are_views_covering_all_rows(self):
        batch = ColumnBatch.from_tuples(
            make_tuples([(i, f"w{i}") for i in range(10)])
        )
        chunks = list(batch.chunks(4))
        assert [len(c) for c in chunks] == [4, 4, 2]
        assert np.shares_memory(chunks[0].columns[0], batch.columns[0])
        rebuilt = [v for c in chunks for v in c.columns[0].tolist()]
        assert rebuilt == batch.columns[0].tolist()

    def test_small_batch_chunks_to_itself(self):
        batch = ColumnBatch.from_tuples(make_tuples([(1,)]))
        assert list(batch.chunks(64)) == [batch]

    def test_payload_bytes_matches_per_tuple_accounting(self):
        original = make_tuples(MIXED_ROWS)
        batch = ColumnBatch.from_tuples(original)
        assert batch.payload_bytes() == sum(
            t.payload_size_bytes for t in original
        )

    def test_fixed_payload_constants_match_tuples_module(self):
        # _FIXED_PAYLOAD_BYTES mirrors repro.dsps.tuples sizing; if the
        # tuple-size model changes, the columnar mirror must follow.
        probes = {"q": (123,), "d": (1.5,), "?": (True,)}
        for code, values in probes.items():
            (tup,) = make_tuples([values])
            assert _FIXED_PAYLOAD_BYTES[code] == tup.payload_size_bytes, code
        (s_tup,) = make_tuples([("abc",)])
        assert 40 + 2 * 3 == s_tup.payload_size_bytes
        (y_tup,) = make_tuples([(b"abc",)])
        assert 33 + 3 == y_tup.payload_size_bytes


class TestDictColumn:
    """The dictionary-encoded string column view (docs/vectorized.md)."""

    WORDS = ["alpha", "beta", "alpha", "gamma", "beta", "alpha"]

    def make(self):
        table = sorted(set(self.WORDS))
        codes = np.asarray(
            [table.index(w) for w in self.WORDS], dtype="<i4"
        )
        return DictColumn(codes, table)

    def test_list_like_protocol(self):
        column = self.make()
        assert len(column) == 6
        assert column[0] == "alpha"
        assert column[-1] == "alpha"
        assert list(column) == self.WORDS
        assert column.tolist() == self.WORDS
        assert column.as_strings() == self.WORDS

    def test_slice_and_fancy_index_stay_encoded(self):
        column = self.make()
        sliced = column[1:4]
        assert isinstance(sliced, DictColumn)
        assert sliced.table is column.table
        assert sliced.tolist() == self.WORDS[1:4]
        picked = column[[4, 0]]
        assert isinstance(picked, DictColumn)
        assert picked.tolist() == ["beta", "alpha"]

    def test_take_helper_preserves_encoding(self):
        got = take(self.make(), [2, 5])
        assert isinstance(got, DictColumn)
        assert got.tolist() == ["alpha", "alpha"]

    def test_build_upgrades_s_to_dict_schema(self):
        batch = ColumnBatch.build("s1", "s", [self.make()])
        assert batch.schema == "D"
        assert isinstance(batch.columns[0], DictColumn)

    def test_build_rejects_plain_column_for_dict_schema(self):
        with pytest.raises(ValueError, match="not DictColumn"):
            ColumnBatch.build("s1", "D", [["alpha", "beta"]])

    def test_to_tuples_materializes_strings(self):
        batch = ColumnBatch.build("s1", "s", [self.make()])
        assert [t.values[0] for t in batch.to_tuples()] == self.WORDS

    def test_payload_bytes_counts_strings_not_codes(self):
        # Logical tuple accounting is encoding-independent: a coded
        # column charges the same bytes as its materialized strings.
        coded = ColumnBatch.build("s1", "s", [self.make()])
        plain = ColumnBatch.build("s1", "s", [list(self.WORDS)])
        assert coded.payload_bytes() == plain.payload_bytes()

    def test_pickle_decays_to_plain_strings(self):
        batch = ColumnBatch.build("s1", "s", [self.make()])
        clone = pickle.loads(pickle.dumps(batch))
        assert clone.schema == "s"
        assert not isinstance(clone.columns[0], DictColumn)
        assert list(clone.columns[0]) == self.WORDS

    def test_wire_round_trip_shares_code_memory(self):
        codec = BatchCodec({EDGE: "s"}, string_dict="on")
        batch = ColumnBatch.build("default", "s", [self.make()])
        batch.stamp_from(
            ColumnBatch.from_tuples(
                make_tuples([(w,) for w in self.WORDS])
            ),
            source_task=3,
        )
        payload = codec.encode_columns(EDGE, batch)
        decoded = codec.decode_columns(payload, edge=EDGE)
        assert decoded.schema == "D"
        column = decoded.columns[0]
        assert isinstance(column, DictColumn)
        assert column.tolist() == self.WORDS
        wire = np.frombuffer(payload, dtype=np.uint8)
        assert np.shares_memory(column.codes, wire)

    def test_schema_accepts_dict_for_string_kernels(self):
        assert schema_accepts(("sq",), "Dq")
        assert schema_accepts(("s",), "D")
        assert schema_accepts(None, "D")
        assert not schema_accepts(("qd",), "Dq")


class TestHelpers:
    def test_schema_dtypes_negotiation(self):
        assert schema_dtypes("qd?sy") == ("<i8", "<f8", "|b1", None, None)

    def test_take_on_lists_and_arrays(self):
        assert take(["a", "b", "c"], [2, 0]) == ["c", "a"]
        got = take(np.array([1, 2, 3]), [2, 0])
        assert got.tolist() == [3, 1]

    def test_pickle_round_trip_drops_tuple_cache(self):
        batch = ColumnBatch.from_tuples(make_tuples([(1, "a"), (2, "b")]))
        clone = pickle.loads(pickle.dumps(batch))
        assert clone._tuples is None
        assert [t.values for t in clone.to_tuples()] == [
            t.values for t in batch.to_tuples()
        ]
        assert clone.stream == batch.stream
        assert clone.source_task == batch.source_task
