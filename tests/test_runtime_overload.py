"""Unit and chaos tests for the overload-control subsystem.

The parity suite (tests/test_overload_parity.py) proves ``--shed off``
is invisible; this file pins the mechanisms themselves — the pure
shed-decision function, detector hysteresis, the ladder's escalation
policy, the token bucket, the send circuit breaker, lag estimation —
and ends with deterministic chaos runs where an overdriven dataflow
walks the full ladder and recovers.
"""

import random
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import build_wordcount, load_application
from repro.dsps import LocalEngine
from repro.errors import ExecutionError, PlanError
from repro.metrics import MetricsRegistry
from repro.runtime import (
    RUNGS,
    CircuitBreaker,
    DegradationLadder,
    LagTracker,
    OverloadConfig,
    OverloadDetector,
    OverloadManager,
    ProcessPoolBackend,
    SendRetryPolicy,
    Shedder,
    TokenBucket,
    decorrelated_jitter,
    shed_score,
)
from repro.runtime.overload import EdgeWindow


def fake_spec(edges):
    """Minimal RuntimeSpec stand-in: tasks + edges with producer/consumer."""
    task_ids = sorted({t for e in edges for t in e})
    return SimpleNamespace(
        tasks=[SimpleNamespace(task_id=t) for t in task_ids],
        edges=[SimpleNamespace(producer=p, consumer=c) for p, c in edges],
    )


PRESSURED = EdgeWindow(enqueued_batches=10, blocked_batches=5)
CLEAN = EdgeWindow(enqueued_batches=10, dequeued_tuples=100)


class TestConfigValidation:
    def test_defaults_are_valid(self):
        config = OverloadConfig()
        assert config.shed_mode == "off"

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"max_lag_ms": 0.0}, "max_lag_ms"),
            ({"max_lag_ms": -5.0}, "max_lag_ms"),
            ({"shed_mode": "priority"}, "shed_mode"),
            ({"shed_rate": 0.0}, "shed_rate"),
            ({"shed_rate": 1.5}, "shed_rate"),
            ({"enter_epochs": 0}, "enter_epochs"),
            ({"exit_epochs": 0}, "enter_epochs"),
            ({"pressure_ratio": 0.0}, "pressure_ratio"),
            ({"throttle_fraction": 1.0}, "throttle_fraction"),
        ],
    )
    def test_rejects_bad_knobs(self, kwargs, match):
        with pytest.raises(PlanError, match=match):
            OverloadConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_s": 0.0},
            {"base_sleep_s": 0.0},
            {"base_sleep_s": 0.5, "max_sleep_s": 0.1},
            {"open_after_s": 0.0},
            {"probe_interval_s": -1.0},
        ],
    )
    def test_send_policy_rejects_bad_knobs(self, kwargs):
        with pytest.raises(PlanError):
            SendRetryPolicy(**kwargs)

    def test_engine_requires_epochs(self):
        topology, _ = load_application("wc")
        with pytest.raises(ExecutionError, match="epoch"):
            LocalEngine(topology, overload=True)

    def test_backends_require_epochs_at_execute(self):
        """Constructing a backend with overload but executing without
        barriers (bypassing the engine facade) still fails loudly."""
        from repro.runtime import InlineBackend

        topology, _ = load_application("wc")
        engine = LocalEngine(topology)  # only borrowing its lowered spec
        for backend in (
            InlineBackend(overload=OverloadConfig()),
            ProcessPoolBackend(n_workers=2, overload=OverloadConfig()),
        ):
            with pytest.raises(ExecutionError, match="epoch"):
                backend.execute(engine.spec, 200)


class TestShedScore:
    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        edge=st.tuples(
            st.integers(min_value=0, max_value=64),
            st.integers(min_value=0, max_value=64),
        ),
        offset=st.integers(min_value=0, max_value=10**9),
    )
    @settings(max_examples=200)
    def test_pure_and_unit_interval(self, seed, edge, offset):
        score = shed_score(seed, edge, offset)
        assert 0.0 <= score < 1.0
        assert score == shed_score(seed, edge, offset)

    def test_distinct_inputs_decorrelate(self):
        base = {shed_score(1, (0, 1), o) for o in range(200)}
        assert len(base) == 200  # no collisions over a small range
        other = [shed_score(2, (0, 1), o) for o in range(200)]
        assert [shed_score(1, (0, 1), o) for o in range(200)] != other

    def test_rate_is_approximately_respected(self):
        n = 5000
        dropped = sum(shed_score(7, (3, 4), o) < 0.3 for o in range(n))
        assert 0.25 < dropped / n < 0.35


class TestShedder:
    def activated(self, mode="random", rate=0.5, seed=1):
        shedder = Shedder(mode, rate, seed)
        shedder.active = True
        return shedder

    def test_inactive_or_off_never_sheds(self):
        off = Shedder("off", 1.0, 1)
        off.active = True
        idle = Shedder("random", 1.0, 1)  # enabled but not activated
        for offset in range(100):
            assert not off.should_shed((0, 1), offset)
            assert not idle.should_shed((0, 1), offset)
        assert off.offered == {} and idle.offered == {}

    @given(
        calls=st.lists(
            st.tuples(
                st.tuples(
                    st.integers(min_value=0, max_value=8),
                    st.integers(min_value=0, max_value=8),
                ),
                st.integers(min_value=0, max_value=10**6),
            ),
            max_size=50,
        )
    )
    @settings(max_examples=100)
    def test_decisions_are_pure_function_of_seed_edge_offset(self, calls):
        """No hidden state, no call-order effects: each decision equals
        the pure score test, however the calls are interleaved."""
        sequential = self.activated(seed=5)
        in_order = [sequential.should_shed(e, o) for e, o in calls]
        shuffled = list(calls)
        random.Random(0).shuffle(shuffled)
        reordered = self.activated(seed=5)
        replayed = {call: reordered.should_shed(*call) for call in shuffled}
        for call, decision in zip(calls, in_order):
            assert decision == replayed[call]
            edge, offset = call
            assert decision == (shed_score(5, edge, offset) < 0.5)

    def test_semantic_mode_protects_unblessed_tuples(self):
        shedder = self.activated(mode="semantic", rate=1.0)
        assert not shedder.should_shed((0, 1), 0, "x", lambda item: False)
        assert not shedder.should_shed((0, 1), 1, "x", None)
        assert shedder.protected == 2
        assert shedder.shed == {}
        # A blessed tuple at rate 1.0 is always shed.
        assert shedder.should_shed((0, 1), 2, "x", lambda item: True)
        assert shedder.shed == {(0, 1): 1}

    def test_snapshot_is_plain_data(self):
        shedder = self.activated(rate=1.0)
        shedder.should_shed((2, 3), 0)
        assert shedder.snapshot() == {
            "offered": {"2-3": 1},
            "shed": {"2-3": 1},
            "protected": 0,
        }


class TestDecorrelatedJitter:
    def test_bounds_and_determinism(self):
        def walk(seed):
            rng, prev, steps = random.Random(seed), 0.1, []
            for _ in range(20):
                prev = decorrelated_jitter(rng, 0.1, 1.0, prev)
                steps.append(prev)
            return steps

        first = walk(3)
        assert first == walk(3)
        assert first != walk(4)
        prev = 0.1
        for step in first:
            assert 0.1 <= step <= 1.0
            assert step <= max(0.1, prev * 3)
            prev = step


class TestLagTracker:
    def test_littles_law_per_edge_and_critical_path(self):
        tracker = LagTracker(fake_spec([(0, 1), (1, 2)]))
        lag = tracker.update(
            {
                (0, 1): EdgeWindow(dequeued_tuples=100, peak_depth=50),
                (1, 2): EdgeWindow(dequeued_tuples=100, peak_depth=10),
            },
            wall_s=1.0,
        )
        assert tracker.edge_lag_ms[(0, 1)] == pytest.approx(500.0)
        assert tracker.edge_lag_ms[(1, 2)] == pytest.approx(100.0)
        assert lag == pytest.approx(600.0)  # residences add along the path

    def test_stalled_edge_is_charged_the_full_window(self):
        tracker = LagTracker(fake_spec([(0, 1)]))
        lag = tracker.update(
            {(0, 1): EdgeWindow(enqueued_tuples=10, peak_depth=10)}, wall_s=0.5
        )
        assert lag == pytest.approx(500.0)

    def test_fan_in_takes_the_slower_branch(self):
        tracker = LagTracker(fake_spec([(0, 2), (1, 2), (2, 3)]))
        lag = tracker.update(
            {
                (0, 2): EdgeWindow(dequeued_tuples=100, peak_depth=10),
                (1, 2): EdgeWindow(dequeued_tuples=100, peak_depth=40),
                (2, 3): EdgeWindow(dequeued_tuples=100, peak_depth=5),
            },
            wall_s=1.0,
        )
        assert lag == pytest.approx(450.0)  # 400 (slow branch) + 50


class TestDetectorHysteresis:
    def test_enter_requires_consecutive_pressure(self):
        detector = OverloadDetector(OverloadConfig(enter_epochs=2))
        assert detector.observe({(0, 1): PRESSURED}, frozenset(), 0.0)
        assert not detector.overloaded  # one window is noise
        detector.observe({(0, 1): CLEAN}, frozenset(), 0.0)
        detector.observe({(0, 1): PRESSURED}, frozenset(), 0.0)
        assert not detector.overloaded  # the streak was broken
        detector.observe({(0, 1): PRESSURED}, frozenset(), 0.0)
        assert detector.overloaded

    def test_exit_requires_consecutive_clean(self):
        detector = OverloadDetector(
            OverloadConfig(enter_epochs=1, exit_epochs=2)
        )
        detector.observe({(0, 1): PRESSURED}, frozenset(), 0.0)
        assert detector.overloaded
        detector.observe({(0, 1): CLEAN}, frozenset(), 0.0)
        assert detector.overloaded  # one clean window is not recovery
        detector.observe({(0, 1): CLEAN}, frozenset(), 0.0)
        assert not detector.overloaded

    def test_reason_channels(self):
        config = OverloadConfig(enter_epochs=1, max_lag_ms=10.0)
        detector = OverloadDetector(config)
        detector.observe({(0, 1): PRESSURED}, frozenset(), 0.0)
        assert detector.last_reasons == ("blocked-put",)
        detector.observe({(0, 1): CLEAN}, {(0, 1)}, 0.0)
        assert detector.last_reasons == ("ring-full",)
        detector.observe({(0, 1): CLEAN}, frozenset(), 50.0)
        assert detector.last_reasons == ("lag-slo",)
        assert detector.slo_violations == 1

    def test_occasional_blocking_is_not_pressure(self):
        detector = OverloadDetector(OverloadConfig(enter_epochs=1))
        # 1 blocked batch out of 100 sealed: below pressure_ratio.
        window = EdgeWindow(enqueued_batches=100, blocked_batches=1)
        assert not detector.observe({(0, 1): window}, frozenset(), 0.0)


class TestDegradationLadder:
    def test_escalates_one_rung_per_epoch_to_the_top(self):
        config = OverloadConfig(enter_epochs=1)
        detector = OverloadDetector(config)
        ladder = DegradationLadder(config)
        detector.overloaded = True
        detector.last_reasons = ("blocked-put",)
        rungs = [ladder.step(epoch, detector) for epoch in range(6)]
        assert rungs == [1, 2, 3, 4, 4, 4]  # clamped at replan
        assert [e["rung"] for e in ladder.timeline] == list(RUNGS[1:])
        assert all(e["kind"] == "escalate" for e in ladder.timeline)

    def test_de_escalates_one_rung_per_clean_epoch(self):
        config = OverloadConfig(enter_epochs=1)
        detector = OverloadDetector(config)
        ladder = DegradationLadder(config)
        detector.overloaded = True
        detector.last_reasons = ("lag-slo",)
        for epoch in range(3):
            ladder.step(epoch, detector)
        detector.overloaded = False
        rungs = [ladder.step(epoch, detector) for epoch in range(3, 8)]
        assert rungs == [2, 1, 0, 0, 0]
        down = [e for e in ladder.timeline if e["kind"] == "de-escalate"]
        assert [e["rung"] for e in down] == ["shed", "batch-shrink", "normal"]
        assert ladder.peak_rung == 3


class TestTokenBucket:
    def test_take_grants_and_accounts_denials(self):
        bucket = TokenBucket(100)
        assert bucket.take(100) == 100
        bucket.refill(50)
        assert bucket.take(100) == 50
        assert bucket.denied == 50

    def test_refill_caps_at_capacity(self):
        bucket = TokenBucket(100)
        bucket.refill(1000)
        assert bucket.tokens == 100


class TestCircuitBreaker:
    def test_opens_after_sustained_blocking_then_probes(self):
        breaker = CircuitBreaker(
            SendRetryPolicy(open_after_s=0.5, probe_interval_s=0.05)
        )
        assert breaker.allow(0.0)
        breaker.on_blocked(0.0)
        assert not breaker.open  # brief blocking keeps the circuit closed
        breaker.on_blocked(0.3)
        assert not breaker.open
        breaker.on_blocked(0.6)
        assert breaker.open and breaker.opens == 1
        assert not breaker.allow(0.62)  # inside the probe interval
        assert breaker.allow(0.66)  # half-open probe
        assert breaker.probes == 1
        breaker.on_blocked(0.66)  # probe failed: next probe rescheduled
        assert not breaker.allow(0.68)
        breaker.on_success()
        assert not breaker.open
        assert breaker.allow(0.70)

    def test_success_resets_the_blocking_clock(self):
        breaker = CircuitBreaker(SendRetryPolicy(open_after_s=0.5))
        breaker.on_blocked(0.0)
        breaker.on_success()
        breaker.on_blocked(0.4)
        breaker.on_blocked(0.8)  # only 0.4s since the new streak began
        assert not breaker.open


class FakeQueueStats(SimpleNamespace):
    pass


def cumulative(blocked, enqueued=10):
    return FakeQueueStats(
        enqueued_batches=enqueued,
        enqueued_tuples=enqueued * 8,
        dequeued_tuples=enqueued * 8,
        blocked_batches=blocked,
        max_depth_tuples=16,
    )


class TestOverloadManager:
    def manager(self, **kwargs):
        config = OverloadConfig(
            enter_epochs=1, exit_epochs=1, shed_mode="random", **kwargs
        )
        return OverloadManager(fake_spec([(0, 1)]), config, interval=100)

    def test_cumulative_stats_are_differenced_per_epoch(self):
        manager = self.manager()
        manager.observe_queue_stats(0, {(0, 1): cumulative(blocked=5)})
        assert manager.report.pressured_epochs == 1
        # Same cumulative counters again: a zero-delta (clean) window.
        manager.observe_queue_stats(1, {(0, 1): cumulative(blocked=5)})
        assert manager.report.pressured_epochs == 1

    def test_directives_follow_the_rung(self):
        manager = self.manager()
        assert not manager.force_batch_pressure
        assert manager.spout_allowance() == 100
        stats = [cumulative(blocked=5 * (n + 1)) for n in range(4)]
        for epoch, stat in enumerate(stats):
            manager.observe_queue_stats(epoch, {(0, 1): stat})
        assert manager.rung == 4
        assert manager.force_batch_pressure
        assert manager.shed_active and manager.shedder.active
        assert manager.throttling
        state = manager.commit_state()
        assert state["rung"] == "replan" and state["replan_requested"]
        # Throttled refill is half the interval; the bucket was drained
        # by the healthy allowance above.
        assert manager.spout_allowance() == 50

    def test_shed_context_round_trip(self):
        manager = self.manager(shed_rate=0.25, shed_seed=9)
        assert manager.shed_context() == {
            "mode": "random",
            "rate": 0.25,
            "seed": 9,
            "active": False,
        }
        off = OverloadManager(
            fake_spec([(0, 1)]), OverloadConfig(), interval=100
        )
        assert off.shed_context() is None

    def test_worker_snapshots_merge_into_the_report(self):
        manager = self.manager()
        blob = {"offered": {"0-1": 40}, "shed": {"0-1": 10}, "protected": 3}
        manager.merge_shed_snapshot(blob)
        manager.merge_shed_snapshot(blob)
        report = manager.finish()
        assert report.offered == 80
        assert report.shed == 20
        assert report.protected == 6
        assert report.shed_by_edge == {"0-1": 20}
        assert report.accuracy_loss() == pytest.approx(0.25)

    def test_finish_is_idempotent(self):
        manager = self.manager()
        manager.shedder.active = True
        manager.shedder.should_shed((0, 1), 0)
        first = manager.finish()
        counted = first.offered
        assert manager.finish().offered == counted == 1


def overdriven_engine(**overload_kwargs):
    """WC under sustained pressure that subsides mid-run: tight queues
    against the 10x splitter fan-out, then a shift to 2-word sentences.

    Pressure signals (blocked puts) are deterministic on the inline
    backend, so the ladder timeline repeats exactly; only the wall-clock
    lag estimates are noisy, and they are checked against a generous SLO.
    """
    topology = build_wordcount(shift_at=600, shift_words_per_sentence=2)
    return LocalEngine(
        topology,
        replication={
            "spout": 1,
            "parser": 2,
            "splitter": 2,
            "counter": 2,
            "sink": 1,
        },
        queue_capacity=28,
        batch_size=8,
        epoch_interval=100,
        overload=OverloadConfig(
            max_lag_ms=60_000.0,
            shed_mode="random",
            shed_rate=0.5,
            shed_seed=3,
            **overload_kwargs,
        ),
    )


class TestChaosLadder:
    """End-to-end: an overdriven dataflow walks the ladder and recovers."""

    def test_ladder_engages_recovers_and_run_completes(self):
        registry = MetricsRegistry()
        engine = overdriven_engine()
        engine.registry = registry
        result = engine.run(2000)
        assert result.events_ingested == 2000  # completed, not killed
        report = result.overload
        kinds = {event["kind"] for event in report.timeline}
        assert kinds == {"escalate", "de-escalate"}
        assert report.peak_rung == "replan"
        assert report.replans_requested > 0
        assert report.throttled_epochs > 0
        assert 0 < report.shed <= report.offered
        assert report.shed == sum(report.shed_by_edge.values())
        assert report.p99_lag_ms() <= report.max_lag_ms  # within SLO
        gauges = registry.snapshot()["gauges"]
        assert "runtime.overload.lag_ms.e2e" in gauges
        assert "runtime.overload.rung" in gauges

    def test_run_report_payload_validates(self):
        report = overdriven_engine().run(1200).overload.to_dict()
        assert set(report["shedding"]) == {
            "offered",
            "shed",
            "protected",
            "accuracy_loss",
            "by_edge",
        }
        assert set(report["throttle"]) == {"throttled_epochs", "tokens_denied"}
        assert report["epochs"] >= report["pressured_epochs"] >= 0
        assert report["peak_rung"] in RUNGS
        assert report["final_rung"] in RUNGS
        for event in report["timeline"]:
            assert set(event) == {"epoch", "kind", "rung", "reason"}
            assert event["rung"] in RUNGS

    def test_ladder_timeline_is_deterministic(self):
        first = overdriven_engine().run(1200).overload
        again = overdriven_engine().run(1200).overload
        assert first.timeline == again.timeline
        assert first.shed_by_edge == again.shed_by_edge

    def test_process_backend_survives_overdrive_with_a_stall(self):
        """Overdriven process run with an injected worker stall: the
        retrying sends ride out the stall and the ladder engages."""
        from repro.runtime import FaultPlan

        topology, _ = load_application("wc")
        engine = LocalEngine(
            topology,
            replication={
                "spout": 1,
                "parser": 2,
                "splitter": 2,
                "counter": 2,
                "sink": 1,
            },
            backend=ProcessPoolBackend(
                n_workers=2,
                overload=OverloadConfig(
                    max_lag_ms=60_000.0, shed_mode="random", shed_rate=0.5
                ),
            ),
            queue_capacity=32,
            batch_size=16,
            epoch_interval=200,
            fault_plan=FaultPlan.from_cli("seed=7,kinds=stall,n=1,at=150"),
            recovery_policy="retry",
        )
        result = engine.run(800)
        assert result.events_ingested == 800
        report = result.overload
        assert report is not None and report.epochs > 0
        assert report.pressured_epochs > 0
        assert any(e["kind"] == "escalate" for e in report.timeline)
