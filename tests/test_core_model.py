"""Unit tests for the rate-based performance model (Formulas 1-2)."""

import pytest

from repro.core import (
    BRISKSTREAM,
    PerformanceModel,
    ProfileSet,
    SystemProfile,
    TfMode,
    collocated_plan,
    empty_plan,
)
from repro.dsps import ExecutionGraph
from repro.errors import PlanError

from tests.conftest import build_pipeline, pipeline_profiles


@pytest.fixture()
def setup(tiny_machine):
    topology = build_pipeline()
    profiles = pipeline_profiles(topology)
    model = PerformanceModel(profiles, tiny_machine)
    graph = ExecutionGraph(
        topology, {"spout": 1, "stage": 1, "fan": 1, "sink": 1}
    )
    return topology, profiles, model, graph


class TestRates:
    def test_undersupplied_output_equals_input(self, setup, tiny_machine):
        _, _, model, graph = setup
        plan = collocated_plan(graph)
        low_rate = 1000.0
        result = model.evaluate(plan, low_rate)
        stage = graph.tasks_of("stage")[0]
        rates = result.rates[stage.task_id]
        assert not rates.oversupplied
        assert rates.processed_rate == pytest.approx(low_rate)
        assert rates.output_rate == pytest.approx(low_rate)

    def test_oversupplied_capped_at_capacity(self, setup):
        _, _, model, graph = setup
        plan = collocated_plan(graph)
        result = model.evaluate(plan, 1e12)
        for task in graph.tasks:
            rates = result.rates[task.task_id]
            assert rates.processed_rate <= rates.capacity * (1 + 1e-9)

    def test_bottlenecks_are_oversupplied_tasks(self, setup):
        _, _, model, graph = setup
        result = model.evaluate(collocated_plan(graph), 1e12)
        assert result.bottlenecks  # everything saturates at infinite input
        for task_id in result.bottlenecks:
            assert result.rates[task_id].oversupplied

    def test_selectivity_multiplies_output(self, setup):
        _, _, model, graph = setup
        result = model.evaluate(collocated_plan(graph), 1000.0)
        fan = graph.tasks_of("fan")[0]
        rates = result.rates[fan.task_id]
        assert rates.output_rate == pytest.approx(2.0 * rates.processed_rate)

    def test_throughput_is_sink_rate(self, setup):
        _, _, model, graph = setup
        result = model.evaluate(collocated_plan(graph), 1000.0)
        sink = graph.tasks_of("sink")[0]
        assert result.throughput == pytest.approx(
            result.rates[sink.task_id].processed_rate
        )
        # sink consumes fan output: 2x input rate
        assert result.throughput == pytest.approx(2000.0)

    def test_replication_raises_capacity(self, setup, tiny_machine):
        topology, profiles, model, _ = setup
        single = ExecutionGraph(
            topology, {"spout": 1, "stage": 1, "fan": 1, "sink": 1}
        )
        double = ExecutionGraph(
            topology, {"spout": 1, "stage": 1, "fan": 2, "sink": 1}
        )
        r_single = model.evaluate(collocated_plan(single), 1e12).throughput
        r_double = model.evaluate(collocated_plan(double), 1e12).throughput
        assert r_double > r_single

    def test_weighted_task_capacity_scales(self, setup, tiny_machine):
        topology, profiles, model, _ = setup
        compressed = ExecutionGraph(
            topology,
            {"spout": 1, "stage": 1, "fan": 4, "sink": 1},
            group_size=4,
        )
        expanded = ExecutionGraph(
            topology, {"spout": 1, "stage": 1, "fan": 4, "sink": 1}
        )
        r_compressed = model.evaluate(collocated_plan(compressed), 1e12).throughput
        r_expanded = model.evaluate(collocated_plan(expanded), 1e12).throughput
        assert r_compressed == pytest.approx(r_expanded, rel=1e-9)

    def test_incomplete_plan_rejected_without_bounding(self, setup):
        _, _, model, graph = setup
        with pytest.raises(PlanError, match="incomplete"):
            model.evaluate(empty_plan(graph), 1000.0)

    def test_component_throughput(self, setup):
        _, _, model, graph = setup
        result = model.evaluate(collocated_plan(graph), 1000.0)
        assert result.component_throughput("fan") == pytest.approx(1000.0)


class TestTf:
    def test_collocated_tf_zero(self, setup):
        _, _, model, graph = setup
        result = model.evaluate(collocated_plan(graph), 1000.0)
        for rates in result.rates.values():
            assert rates.tf_ns == 0.0

    def test_remote_placement_pays_formula2(self, setup, tiny_machine):
        _, profiles, model, graph = setup
        plan = empty_plan(graph).assign(
            {t.task_id: (0 if t.component in ("spout", "stage") else 1) for t in graph.tasks}
        )
        result = model.evaluate(plan, 1000.0)
        fan = graph.tasks_of("fan")[0]
        wire = BRISKSTREAM.wire_bytes(profiles.edge_payload_bytes("stage"))
        expected = tiny_machine.cache_lines(wire) * tiny_machine.latency_ns(0, 1)
        assert result.rates[fan.task_id].tf_ns == pytest.approx(expected)

    def test_remote_reduces_throughput(self, setup):
        _, _, model, graph = setup
        local = model.evaluate(collocated_plan(graph), 1e12).throughput
        spread = empty_plan(graph).assign(
            {t.task_id: i % 2 * 2 for i, t in enumerate(graph.tasks)}
        )
        remote = model.evaluate(spread, 1e12).throughput
        assert remote < local

    def test_cross_tray_worse_than_in_tray(self, setup):
        _, _, model, graph = setup
        tasks = graph.tasks
        in_tray = empty_plan(graph).assign(
            {tasks[0].task_id: 0, tasks[1].task_id: 0, tasks[2].task_id: 1, tasks[3].task_id: 1}
        )
        cross_tray = empty_plan(graph).assign(
            {tasks[0].task_id: 0, tasks[1].task_id: 0, tasks[2].task_id: 2, tasks[3].task_id: 2}
        )
        r_in = model.evaluate(in_tray, 1e12).throughput
        r_cross = model.evaluate(cross_tray, 1e12).throughput
        assert r_cross < r_in

    def test_tf_mode_zero_ignores_distance(self, setup, tiny_machine):
        topology, profiles, _, graph = setup
        model = PerformanceModel(profiles, tiny_machine, tf_mode=TfMode.ZERO)
        spread = empty_plan(graph).assign(
            {t.task_id: i % tiny_machine.n_sockets for i, t in enumerate(graph.tasks)}
        )
        local = model.evaluate(collocated_plan(graph), 1e12).throughput
        remote = model.evaluate(spread, 1e12).throughput
        assert remote == pytest.approx(local)

    def test_tf_mode_worst_is_pessimistic_even_when_local(self, setup, tiny_machine):
        topology, profiles, _, graph = setup
        worst = PerformanceModel(profiles, tiny_machine, tf_mode=TfMode.WORST)
        relative = PerformanceModel(profiles, tiny_machine, tf_mode=TfMode.RELATIVE)
        plan = collocated_plan(graph)
        assert (
            worst.evaluate(plan, 1e12).throughput
            < relative.evaluate(plan, 1e12).throughput
        )

    def test_fetch_cost_helper(self, setup, tiny_machine):
        _, _, model, _ = setup
        assert model.fetch_cost_ns(100, 0, 0) == 0.0
        assert model.fetch_cost_ns(100, 0, 1) > 0
        assert model.fetch_cost_ns(100, None, 1) == 0.0


class TestBounding:
    def test_bound_dominates_any_completion(self, setup, tiny_machine):
        _, _, model, graph = setup
        partial = empty_plan(graph).assign({0: 0, 1: 0})
        bound = model.evaluate(partial, 1e12, bounding=True).throughput
        for socket_fan in range(tiny_machine.n_sockets):
            for socket_sink in range(tiny_machine.n_sockets):
                complete = partial.assign({2: socket_fan, 3: socket_sink})
                value = model.evaluate(complete, 1e12).throughput
                assert value <= bound * (1 + 1e-9)

    def test_bound_of_complete_plan_equals_value(self, setup):
        _, _, model, graph = setup
        plan = collocated_plan(graph)
        exact = model.evaluate(plan, 1e12).throughput
        bound = model.evaluate(plan, 1e12, bounding=True).throughput
        assert bound == pytest.approx(exact)


class TestInterconnect:
    def test_local_plan_has_no_traffic(self, setup):
        _, _, model, graph = setup
        result = model.evaluate(collocated_plan(graph), 1000.0)
        assert result.interconnect_bytes.sum() == 0.0

    def test_cross_socket_traffic_counted(self, setup):
        _, _, model, graph = setup
        plan = empty_plan(graph).assign({0: 0, 1: 0, 2: 1, 3: 1})
        result = model.evaluate(plan, 1000.0)
        assert result.interconnect_bytes[0, 1] > 0
        assert result.interconnect_bytes[1, 0] == 0.0

    def test_flows_collected_on_demand(self, setup):
        _, _, model, graph = setup
        plan = collocated_plan(graph)
        assert model.evaluate(plan, 1000.0).flows == []
        flows = model.evaluate(plan, 1000.0, collect_flows=True).flows
        assert len(flows) == len(graph.edges)


class TestMultiInputPenalty:
    def test_penalty_applies_to_multi_input_components(self, tiny_machine):
        from repro.dsps import IterableSpout, MapOperator, Sink, TopologyBuilder
        from repro.core import OperatorProfile

        builder = TopologyBuilder("merge")
        builder.set_spout("s", IterableSpout([("x",)]))
        builder.add_operator("a", MapOperator(lambda v: v)).shuffle_from("s")
        builder.add_operator("b", MapOperator(lambda v: v)).shuffle_from("s")
        builder.add_sink("z", Sink()).shuffle_from("a").shuffle_from("b")
        topology = builder.build()
        profiles = ProfileSet(
            topology,
            {
                name: OperatorProfile(
                    name, 100, 0, {"default": 50}, {"default": 1.0}
                )
                for name in ("s", "a", "b")
            }
            | {"z": OperatorProfile("z", 100, 0, {}, {})},
        )
        plain = SystemProfile(name="plain")
        penalized = SystemProfile(name="flinkish", multi_input_penalty_ns=1000.0)
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        plan = collocated_plan(graph)
        r_plain = PerformanceModel(profiles, tiny_machine, system=plain).evaluate(
            plan, 1e12
        )
        r_pen = PerformanceModel(profiles, tiny_machine, system=penalized).evaluate(
            plan, 1e12
        )
        sink = graph.tasks_of("z")[0].task_id
        spout = graph.tasks_of("s")[0].task_id
        assert r_pen.rates[sink].overhead_ns == pytest.approx(
            r_plain.rates[sink].overhead_ns + 1000.0
        )
        assert r_pen.rates[spout].overhead_ns == pytest.approx(
            r_plain.rates[spout].overhead_ns
        )
