"""Unit tests for operator/system profiles."""

import pytest

from repro.core import BRISKSTREAM, OperatorProfile, ProfileSet, SystemProfile
from repro.dsps import LocalEngine, TUPLE_HEADER_BYTES
from repro.errors import ProfilingError

from tests.conftest import build_pipeline, pipeline_profiles


class TestOperatorProfile:
    def test_selectivity_access(self):
        profile = OperatorProfile(
            "op", 100, selectivity={"a": 2.0, "b": 0.5}, output_bytes={"a": 10}
        )
        assert profile.stream_selectivity("a") == 2.0
        assert profile.stream_selectivity("missing") == 0.0
        assert profile.total_selectivity == 2.5

    def test_stream_bytes(self):
        profile = OperatorProfile("op", 100, output_bytes={"a": 10.5})
        assert profile.stream_bytes("a") == 10.5
        assert profile.stream_bytes("b") == 0.0

    def test_negative_te_rejected(self):
        with pytest.raises(ProfilingError):
            OperatorProfile("op", -1)

    def test_negative_selectivity_rejected(self):
        with pytest.raises(ProfilingError):
            OperatorProfile("op", 1, selectivity={"a": -0.1})

    def test_mappings_frozen(self):
        profile = OperatorProfile("op", 100, selectivity={"a": 1.0})
        with pytest.raises(TypeError):
            profile.selectivity["a"] = 2.0


class TestProfileSet:
    def test_complete_coverage_required(self):
        topology = build_pipeline()
        with pytest.raises(ProfilingError, match="missing"):
            ProfileSet(topology, {})

    def test_lookup_and_contains(self):
        topology = build_pipeline()
        profiles = pipeline_profiles(topology)
        assert "fan" in profiles
        assert profiles["fan"].te_cycles == 800
        with pytest.raises(ProfilingError):
            profiles["ghost"]

    def test_replace_returns_new_set(self):
        topology = build_pipeline()
        profiles = pipeline_profiles(topology)
        updated = profiles.replace("fan", te_cycles=999)
        assert updated["fan"].te_cycles == 999
        assert profiles["fan"].te_cycles == 800

    def test_edge_payload_bytes(self):
        topology = build_pipeline()
        profiles = pipeline_profiles(topology)
        assert profiles.edge_payload_bytes("spout") == 100

    def test_from_run_measures_selectivity(self):
        topology = build_pipeline(selectivity=3.0)
        run = LocalEngine(topology).run(50)
        profiles = ProfileSet.from_run(
            topology,
            run,
            te_cycles={"spout": 1, "stage": 2, "fan": 3, "sink": 4},
        )
        assert profiles["fan"].stream_selectivity() == pytest.approx(3.0)
        assert profiles["fan"].stream_bytes() > 0

    def test_from_run_requires_all_te(self):
        topology = build_pipeline()
        run = LocalEngine(topology).run(10)
        with pytest.raises(ProfilingError, match="te_cycles missing"):
            ProfileSet.from_run(topology, run, te_cycles={"spout": 1})


class TestSystemProfile:
    def test_jumbo_amortizes_header(self):
        assert BRISKSTREAM.header_bytes_per_tuple() == pytest.approx(
            TUPLE_HEADER_BYTES / BRISKSTREAM.batch_size
        )

    def test_non_amortized_full_header(self):
        system = SystemProfile(name="x", header_amortized=False)
        assert system.header_bytes_per_tuple() == TUPLE_HEADER_BYTES

    def test_queue_cost_scales_with_selectivity(self):
        system = SystemProfile(
            name="x", queue_op_ns=100, queue_amortized=False
        )
        assert system.queue_cost_ns(3.0) == pytest.approx(300.0)

    def test_queue_cost_amortized(self):
        system = SystemProfile(
            name="x", queue_op_ns=100, queue_amortized=True, batch_size=10
        )
        assert system.queue_cost_ns(1.0) == pytest.approx(10.0)

    def test_overhead_includes_serialization(self):
        system = SystemProfile(name="x", others_ns=50, serialization_ns_per_byte=0.5)
        assert system.overhead_ns(100, 60, 0.0) == pytest.approx(50 + 80)

    def test_wire_bytes(self):
        system = SystemProfile(name="x", header_amortized=False)
        assert system.wire_bytes(100) == 100 + TUPLE_HEADER_BYTES

    def test_invalid_te_multiplier(self):
        with pytest.raises(ProfilingError):
            SystemProfile(name="x", te_multiplier=0)

    def test_queue_capacity_must_hold_a_batch(self):
        with pytest.raises(ProfilingError):
            SystemProfile(name="x", batch_size=64, queue_capacity=10)
