"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    HardwareError,
    InfeasiblePlanError,
    PlanError,
    ProfilingError,
    ReproError,
    SimulationError,
    TopologyError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            TopologyError,
            PlanError,
            InfeasiblePlanError,
            HardwareError,
            ProfilingError,
            SimulationError,
        ],
    )
    def test_all_derive_from_base(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_infeasible_is_plan_error(self):
        assert issubclass(InfeasiblePlanError, PlanError)

    def test_base_catchable_at_api_boundary(self):
        """Library calls surface ReproError for invalid input."""
        from repro.dsps import TopologyBuilder

        try:
            TopologyBuilder("x").build()
        except ReproError as exc:
            assert "spout" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected a ReproError")
