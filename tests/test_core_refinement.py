"""Unit tests for local-search plan refinement."""

import pytest

from repro.core import PerformanceModel, collocated_plan
from repro.core.plan import ExecutionPlan
from repro.core.refinement import refine_plan
from repro.dsps import ExecutionGraph
from repro.errors import PlanError

from tests.conftest import build_pipeline, pipeline_profiles


@pytest.fixture()
def setup(tiny_machine):
    topology = build_pipeline()
    profiles = pipeline_profiles(topology)
    model = PerformanceModel(profiles, tiny_machine)
    return topology, model


class TestRefinement:
    def test_improves_a_bad_plan(self, setup, tiny_machine):
        topology, model = setup
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        # Deliberately terrible: every stage max-hop from its producer.
        bad = ExecutionPlan(
            graph=graph, placement={0: 0, 1: 2, 2: 0, 3: 2}
        )
        before = model.evaluate(bad, 1e7).throughput
        plan, result, stats = refine_plan(bad, model, 1e7)
        assert result.throughput > before
        assert stats.moves_accepted + stats.swaps_accepted > 0
        assert stats.final_throughput >= stats.initial_throughput

    def test_never_degrades(self, setup):
        topology, model = setup
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        good = collocated_plan(graph)
        before = model.evaluate(good, 1e7).throughput
        _, result, _ = refine_plan(good, model, 1e7)
        assert result.throughput >= before * (1 - 1e-12)

    def test_noop_on_local_plan(self, setup):
        topology, model = setup
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        plan, result, stats = refine_plan(collocated_plan(graph), model, 1e5)
        assert stats.moves_accepted == 0
        assert stats.swaps_accepted == 0
        assert plan.placement == collocated_plan(graph).placement

    def test_respects_core_limits(self, setup, tiny_machine):
        topology, model = setup
        graph = ExecutionGraph(topology, {n: 2 for n in topology.components})
        spread = ExecutionPlan(
            graph=graph,
            placement={t.task_id: t.task_id % 4 for t in graph.tasks},
        )
        plan, _, _ = refine_plan(spread, model, 1e7)
        for socket in plan.used_sockets():
            assert plan.replicas_on(socket) <= tiny_machine.cores_per_socket

    def test_incomplete_plan_rejected(self, setup):
        topology, model = setup
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        from repro.core.plan import empty_plan

        with pytest.raises(PlanError):
            refine_plan(empty_plan(graph), model, 1e7)

    def test_zero_passes_budget(self, setup):
        topology, model = setup
        graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
        bad = ExecutionPlan(graph=graph, placement={0: 0, 1: 2, 2: 0, 3: 2})
        _, _, stats = refine_plan(bad, model, 1e7, max_passes=0)
        assert stats.passes == 0
        assert stats.moves_accepted == 0


class TestNeverWorsens:
    def test_randomized_starts_never_degrade(self, setup, tiny_machine):
        """Refinement must never worsen the modeled throughput, whatever
        (complete, core-feasible) plan it starts from."""
        import random

        topology, model = setup
        graph = ExecutionGraph(topology, {n: 2 for n in topology.components})
        rng = random.Random(23)
        for _ in range(12):
            placement = {
                t.task_id: rng.randrange(tiny_machine.n_sockets)
                for t in graph.tasks
            }
            plan = ExecutionPlan(graph=graph, placement=placement)
            before = model.evaluate(plan, 1e7).throughput
            _, result, stats = refine_plan(plan, model, 1e7)
            assert result.throughput >= before * (1 - 1e-12)
            assert stats.final_throughput >= stats.initial_throughput
