"""Property-based tests (hypothesis) for core invariants."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PerformanceModel, collocated_plan
from repro.core.plan import ExecutionPlan
from repro.dsps import ExecutionGraph, JumboTuple, OutputBuffer, StreamTuple
from repro.dsps.queues import CommunicationQueue
from repro.dsps.streams import FieldsGrouping, ShuffleGrouping
from repro.hardware import GB, MachineSpec, glueless_two_tray

from tests.conftest import build_pipeline, pipeline_profiles

TOPOLOGY = build_pipeline()
PROFILES = pipeline_profiles(TOPOLOGY)
MACHINE = MachineSpec(
    name="prop (4x4)",
    topology=glueless_two_tray(4),
    cores_per_socket=4,
    freq_ghz=2.0,
    local_latency_ns=50.0,
    hop_latency_ns={1: 200.0, 2: 400.0},
    local_bandwidth=20.0 * GB,
    hop_bandwidth={1: 8.0 * GB, 2: 4.0 * GB},
)
MODEL = PerformanceModel(PROFILES, MACHINE)

replication_strategy = st.fixed_dictionaries(
    {
        "spout": st.integers(1, 4),
        "stage": st.integers(1, 4),
        "fan": st.integers(1, 6),
        "sink": st.integers(1, 4),
    }
)


class TestGraphInvariants:
    @given(replication=replication_strategy)
    @settings(max_examples=40, deadline=None)
    def test_unicast_shares_sum_to_one(self, replication):
        graph = ExecutionGraph(TOPOLOGY, replication)
        for task in graph.tasks:
            outgoing = graph.outgoing(task.task_id)
            if outgoing:
                assert math.isclose(sum(e.share for e in outgoing), 1.0)

    @given(replication=replication_strategy, ratio=st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_compression_preserves_replicas(self, replication, ratio):
        fine = ExecutionGraph(TOPOLOGY, replication)
        coarse = ExecutionGraph(TOPOLOGY, replication, group_size=ratio)
        assert fine.total_replicas == coarse.total_replicas
        assert coarse.n_tasks <= fine.n_tasks

    @given(replication=replication_strategy, ratio=st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_replica_assignment_covers_everything(self, replication, ratio):
        graph = ExecutionGraph(TOPOLOGY, replication, group_size=ratio)
        placement = {t.task_id: t.task_id % 4 for t in graph.tasks}
        assignment = graph.replica_assignment(placement)
        assert len(assignment) == graph.total_replicas


class TestModelInvariants:
    @given(replication=replication_strategy, rate=st.floats(1.0, 1e9))
    @settings(max_examples=40, deadline=None)
    def test_processed_never_exceeds_input_or_capacity(self, replication, rate):
        graph = ExecutionGraph(TOPOLOGY, replication)
        result = MODEL.evaluate(collocated_plan(graph), rate)
        for rates in result.rates.values():
            assert rates.processed_rate <= rates.input_rate * (1 + 1e-9)
            assert rates.processed_rate <= rates.capacity * (1 + 1e-9)

    @given(rate=st.floats(1.0, 1e8))
    @settings(max_examples=30, deadline=None)
    def test_throughput_monotone_in_ingress(self, rate):
        graph = ExecutionGraph(TOPOLOGY, {n: 1 for n in TOPOLOGY.components})
        plan = collocated_plan(graph)
        low = MODEL.evaluate(plan, rate).throughput
        high = MODEL.evaluate(plan, rate * 2).throughput
        assert high >= low * (1 - 1e-9)

    @given(
        replication=replication_strategy,
        sockets=st.lists(st.integers(0, 3), min_size=16, max_size=16),
        rate=st.floats(1e3, 1e9),
    )
    @settings(max_examples=40, deadline=None)
    def test_bounding_dominates_complete_value(self, replication, sockets, rate):
        """The B&B bound (Tf=0 relaxation) upper-bounds any placement."""
        graph = ExecutionGraph(TOPOLOGY, replication)
        placement = {
            t.task_id: sockets[i % len(sockets)]
            for i, t in enumerate(graph.tasks)
        }
        plan = ExecutionPlan(graph=graph, placement=placement)
        exact = MODEL.evaluate(plan, rate).throughput
        from repro.core.plan import empty_plan

        bound = MODEL.evaluate(empty_plan(graph), rate, bounding=True).throughput
        assert exact <= bound * (1 + 1e-9)

    @given(
        replication=replication_strategy,
        sockets=st.lists(st.integers(0, 3), min_size=16, max_size=16),
    )
    @settings(max_examples=30, deadline=None)
    def test_flow_conservation_at_sinks(self, replication, sockets):
        """Sink input rate == fan output reaching it (no tuples invented)."""
        graph = ExecutionGraph(TOPOLOGY, replication)
        placement = {
            t.task_id: sockets[i % len(sockets)]
            for i, t in enumerate(graph.tasks)
        }
        result = MODEL.evaluate(
            ExecutionPlan(graph=graph, placement=placement), 1e5
        )
        fan_out = sum(
            r.output_rate for r in result.rates.values() if r.component == "fan"
        )
        sink_in = sum(
            r.input_rate for r in result.rates.values() if r.component == "sink"
        )
        assert math.isclose(fan_out, sink_in, rel_tol=1e-9)


class TestGroupingProperties:
    @given(
        keys=st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=50),
        n_consumers=st.integers(1, 16),
    )
    @settings(max_examples=50, deadline=None)
    def test_fields_grouping_stable(self, keys, n_consumers):
        grouping = FieldsGrouping(0)
        for key in keys:
            item = StreamTuple(values=(key,))
            first = grouping.route(item, n_consumers, 0)
            again = grouping.route(item, n_consumers, 99)
            assert first == again
            assert 0 <= first[0] < n_consumers

    @given(n_consumers=st.integers(1, 12), count=st.integers(1, 200))
    @settings(max_examples=30, deadline=None)
    def test_shuffle_is_balanced(self, n_consumers, count):
        grouping = ShuffleGrouping()
        targets = [
            grouping.route(StreamTuple(values=(i,)), n_consumers, i)[0]
            for i in range(count)
        ]
        counts = [targets.count(c) for c in range(n_consumers)]
        assert max(counts) - min(counts) <= 1


class TestQueueProperties:
    @given(
        batch_size=st.integers(1, 32),
        n_tuples=st.integers(0, 200),
    )
    @settings(max_examples=50, deadline=None)
    def test_buffer_plus_flush_loses_nothing(self, batch_size, n_tuples):
        buffer = OutputBuffer(0, 1, batch_size=batch_size)
        queue = CommunicationQueue(0, 1)
        for i in range(n_tuples):
            sealed = buffer.append(StreamTuple(values=(i,)))
            if sealed is not None:
                queue.put(sealed)
        sealed = buffer.flush()
        if sealed is not None:
            queue.put(sealed)
        drained = queue.drain_tuples()
        assert [t.values[0] for t in drained] == list(range(n_tuples))

    @given(sizes=st.lists(st.integers(1, 20), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_bounded_queue_never_overflows(self, sizes):
        capacity = 25
        queue = CommunicationQueue(0, 1, capacity_tuples=capacity)
        for index, size in enumerate(sizes):
            batch = JumboTuple(
                source_task=0,
                target_task=1,
                tuples=[StreamTuple(values=(index, i)) for i in range(size)],
            )
            queue.offer(batch)
            assert queue.depth_tuples <= capacity
