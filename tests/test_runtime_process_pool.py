"""White-box tests for the process backend's worker internals.

These run the ``_Worker`` machinery in-process (plain ``queue.Queue``
stand-ins for the mp inboxes, lists for the shared liveness arrays) to
pin the admission-control and bounded-blocking behavior that the
end-to-end suites can only observe indirectly:

* ``_admit``: hard admission refuses over-capacity batches (backpressure
  holds the message), soft admission always lands and is counted;
* ``_enqueue_backlog``: arrival mode drains cross-edge batches in
  arrival order, ordered mode in strict edge-declaration order;
* ``_blocking_put``: a full peer inbox blocks with bounded patience —
  a dead peer raises WorkerCrashError, a live-but-stuck one raises
  QueueDeadlockError after ``send_timeout_s`` (this path used to spin
  forever).
"""

import queue
import threading

import pytest

from repro.apps import load_application
from repro.dsps import LocalEngine
from repro.dsps.tuples import StreamTuple
from repro.errors import (
    ExecutionError,
    QueueDeadlockError,
    WorkerCrashError,
)
from repro.runtime import ProcessPoolBackend
from repro.runtime.process_pool import _STATUS_RUNNING, _Worker


def make_worker(*, ordered=False, queue_capacity=None, inboxes=None, **kwargs):
    """A single-worker ``_Worker`` over the lowered WC spec."""
    topology, _ = load_application("wc")
    engine = LocalEngine(topology, queue_capacity=queue_capacity)
    spec = engine.spec
    owner = {rt.task_id: 0 for rt in spec.tasks}
    return (
        _Worker(
            0,
            spec,
            owner,
            100,
            inboxes if inboxes is not None else [queue.Queue()],
            ordered,
            **kwargs,
        ),
        spec,
    )


def tuples_of(n, producer=0):
    return [
        StreamTuple(values=(f"w{i}",), source_task=producer) for i in range(n)
    ]


def some_edge(spec):
    """An arbitrary (producer, consumer) edge of the lowered spec."""
    return spec.edges[0].producer, spec.edges[0].consumer


class TestConstructorValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_workers": 0},
            {"inbox_batches": 0},
            {"timeout_s": 0},
            {"timeout_s": -5.0},
            {"heartbeat_timeout_s": 0},
            {"send_timeout_s": -1.0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ExecutionError):
            ProcessPoolBackend(**kwargs)


class TestAdmission:
    def test_hard_admission_refuses_over_capacity(self):
        worker, spec = make_worker(queue_capacity=64)
        producer, consumer = some_edge(spec)
        assert worker._admit(producer, consumer, tuples_of(60), soft=False)
        # 60 buffered + 10 more would exceed the 64-tuple capacity.
        assert not worker._admit(producer, consumer, tuples_of(10), soft=False)
        assert worker.edge_depth[(producer, consumer)] == 60
        assert worker.metrics["overflow_admissions"] == 0

    def test_soft_admission_always_lands_and_is_counted(self):
        worker, spec = make_worker(queue_capacity=64)
        producer, consumer = some_edge(spec)
        assert worker._admit(producer, consumer, tuples_of(60), soft=True)
        assert worker._admit(producer, consumer, tuples_of(10), soft=True)
        assert worker.edge_depth[(producer, consumer)] == 70
        assert worker.metrics["overflow_admissions"] == 1

    def test_unbounded_edges_never_refuse(self):
        worker, spec = make_worker(queue_capacity=None)
        producer, consumer = some_edge(spec)
        for _ in range(10):
            assert worker._admit(producer, consumer, tuples_of(64), soft=False)
        assert worker.edge_depth[(producer, consumer)] == 640

    def test_depth_and_stats_bookkeeping(self):
        worker, spec = make_worker(queue_capacity=256)
        key = some_edge(spec)
        worker._enqueue_backlog(key, tuples_of(64))
        worker._enqueue_backlog(key, tuples_of(32))
        stats = worker.edge_stats[key]
        assert stats.enqueued_batches == 2
        assert stats.enqueued_tuples == 96
        assert stats.max_depth_tuples == 96
        assert worker.edge_depth[key] == 96


class TestBacklogDrainOrder:
    def test_arrival_mode_drains_in_arrival_order(self):
        worker, spec = make_worker(ordered=False)
        # A consumer with at least one input edge.
        rt = next(r for r in spec.tasks if r.in_edges)
        keys = [(e.producer, e.consumer) for e in rt.in_edges]
        first = tuples_of(3, producer=keys[0][0])
        second = tuples_of(2, producer=keys[0][0])
        worker._enqueue_backlog(keys[0], first)
        worker._enqueue_backlog(keys[0], second)
        got_key, got = worker._next_batch(rt)
        assert got_key == keys[0]
        assert got is first  # FIFO: first-arrived batch drains first
        _, got2 = worker._next_batch(rt)
        assert got2 is second

    def test_ordered_mode_respects_edge_declaration_order(self):
        # LR has true multi-input operators; use one to get >= 2 in-edges.
        topology, _ = load_application("lr")
        engine = LocalEngine(topology)
        spec = engine.spec
        rt = next(r for r in spec.tasks if len(r.in_edges) >= 2)
        owner = {t.task_id: 0 for t in spec.tasks}
        worker = _Worker(0, spec, owner, 100, [queue.Queue()], True)
        keys = [(e.producer, e.consumer) for e in rt.in_edges]
        late_edge_batch = tuples_of(2, producer=keys[1][0])
        worker._enqueue_backlog(keys[1], late_edge_batch)
        # The earliest declared edge has no data and no EOF: ordered mode
        # must wait for it rather than consume the later edge.
        assert worker._next_batch(rt) is None
        worker.eof.add(keys[0])
        got_key, got = worker._next_batch(rt)
        assert got_key == keys[1]
        assert got is late_edge_batch


class TestBoundedBlockingPut:
    def _two_worker_setup(self, *, status, send_timeout_s=0.2):
        own_inbox = queue.Queue()
        peer_inbox = queue.Queue(maxsize=1)
        peer_inbox.put(("batch", 0, 0, b"full"))  # peer inbox already full
        worker, _spec = make_worker(
            inboxes=[own_inbox, peer_inbox],
            status=status,
            send_timeout_s=send_timeout_s,
        )
        return worker

    def test_dead_peer_raises_worker_crash(self):
        status = [_STATUS_RUNNING, 70]  # parent recorded peer's exit code
        worker = self._two_worker_setup(status=status)
        with pytest.raises(WorkerCrashError, match="died"):
            worker._blocking_put(1, ("batch", 0, 0, b"payload"))

    def test_live_stuck_peer_raises_deadlock_after_timeout(self):
        status = [_STATUS_RUNNING, _STATUS_RUNNING]
        worker = self._two_worker_setup(status=status, send_timeout_s=0.2)
        with pytest.raises(QueueDeadlockError, match="blocked"):
            worker._blocking_put(1, ("batch", 0, 0, b"payload"))

    def test_send_completes_when_peer_drains(self):
        own_inbox = queue.Queue()
        peer_inbox = queue.Queue(maxsize=1)
        worker, _spec = make_worker(
            inboxes=[own_inbox, peer_inbox],
            status=[_STATUS_RUNNING, _STATUS_RUNNING],
        )
        worker._blocking_put(1, ("batch", 0, 0, b"payload"))
        assert peer_inbox.get_nowait() == ("batch", 0, 0, b"payload")

    def test_blocked_sender_keeps_draining_own_inbox(self):
        own_inbox = queue.Queue()
        peer_inbox = queue.Queue(maxsize=1)
        peer_inbox.put(("stuck",))
        worker, spec = make_worker(
            inboxes=[own_inbox, peer_inbox],
            status=[_STATUS_RUNNING, _STATUS_RUNNING],
            send_timeout_s=0.2,
        )
        # An EOF waiting in our own inbox must be absorbed while blocked
        # (soft receive), not left to deadlock the worker graph.
        producer, consumer = some_edge(spec)
        own_inbox.put(("eof", producer, consumer))
        with pytest.raises(QueueDeadlockError):
            worker._blocking_put(1, ("batch", 0, 0, b"payload"))
        assert (producer, consumer) in worker.eof


class TestSealedBatchByteAccounting:
    """Byte counters tick exactly once per sealed batch.

    ``pack()`` seals (and counts) a batch before ``_blocking_put`` starts
    retrying, so a send that blocks on a full peer inbox and loops must
    not inflate ``pickled_bytes_out``/``remote_batches_out``.
    """

    def test_retried_send_counts_bytes_once(self):
        own_inbox = queue.Queue()
        peer_inbox = queue.Queue(maxsize=1)
        peer_inbox.put(("stuck",))  # first try_put attempts fail
        worker, spec = make_worker(
            inboxes=[own_inbox, peer_inbox],
            status=[_STATUS_RUNNING, _STATUS_RUNNING],
            send_timeout_s=5.0,
        )
        producer, consumer = some_edge(spec)
        worker.owner[consumer] = 1  # force the remote-dispatch path
        # Unstick the peer inbox only after the sender has started
        # retrying, so the batch is demonstrably re-put at least once.
        threading.Timer(0.2, peer_inbox.get).start()
        worker._dispatch(producer, consumer, tuples_of(8, producer=producer))
        message = peer_inbox.get_nowait()
        assert message[0] == "batch"
        assert worker.metrics["send_blocks"] == 1  # the send did retry
        metrics = worker.channel.metrics
        assert metrics["remote_batches_out"] == 1
        assert metrics["pickled_bytes_out"] == len(message[3])

    def test_unblocked_send_counts_bytes_once(self):
        own_inbox = queue.Queue()
        peer_inbox = queue.Queue()
        worker, spec = make_worker(
            inboxes=[own_inbox, peer_inbox],
            status=[_STATUS_RUNNING, _STATUS_RUNNING],
        )
        producer, consumer = some_edge(spec)
        worker.owner[consumer] = 1
        for _ in range(3):
            worker._dispatch(producer, consumer, tuples_of(4, producer=producer))
        total = sum(len(peer_inbox.get_nowait()[3]) for _ in range(3))
        metrics = worker.channel.metrics
        assert metrics["remote_batches_out"] == 3
        assert metrics["pickled_bytes_out"] == total
