"""Unit tests for the topology builder and DAG validation."""

import pytest

from repro.dsps import (
    ComponentKind,
    FilterOperator,
    IterableSpout,
    MapOperator,
    Sink,
    TopologyBuilder,
)
from repro.errors import TopologyError


def _spout():
    return IterableSpout([("x",)])


def _op():
    return MapOperator(lambda v: v)


class TestBuilder:
    def test_linear_chain(self):
        builder = TopologyBuilder("chain")
        builder.set_spout("s", _spout())
        builder.add_operator("a", _op()).shuffle_from("s")
        builder.add_sink("z", Sink()).shuffle_from("a")
        topology = builder.build()
        assert topology.spouts == ["s"]
        assert topology.sinks == ["z"]
        assert topology.topological_order() == ["s", "a", "z"]

    def test_reverse_topological_order(self):
        builder = TopologyBuilder("chain")
        builder.set_spout("s", _spout())
        builder.add_operator("a", _op()).shuffle_from("s")
        builder.add_sink("z", Sink()).shuffle_from("a")
        topology = builder.build()
        assert topology.reverse_topological_order()[0] == "z"

    def test_diamond(self):
        builder = TopologyBuilder("diamond")
        builder.set_spout("s", _spout())
        builder.add_operator("l", _op()).shuffle_from("s")
        builder.add_operator("r", _op()).shuffle_from("s")
        builder.add_sink("z", Sink()).shuffle_from("l").shuffle_from("r")
        topology = builder.build()
        assert topology.producers_of("z") == ["l", "r"]
        assert topology.consumers_of("s") == ["l", "r"]
        assert len(topology.incoming("z")) == 2

    def test_multi_stream_edges(self):
        builder = TopologyBuilder("streams")
        builder.set_spout("s", _spout())
        builder.add_operator("a", _op()).shuffle_from("s", stream="left")
        builder.add_sink("z", Sink()).shuffle_from("a")
        topology = builder.build()
        assert topology.outgoing("s")[0].stream == "left"

    def test_component_kinds(self):
        builder = TopologyBuilder("kinds")
        builder.set_spout("s", _spout())
        builder.add_operator("a", _op()).shuffle_from("s")
        builder.add_sink("z", Sink()).shuffle_from("a")
        topology = builder.build()
        assert topology.component("s").kind is ComponentKind.SPOUT
        assert topology.component("a").kind is ComponentKind.OPERATOR
        assert topology.component("z").kind is ComponentKind.SINK

    def test_sink_added_via_add_operator_detected(self):
        builder = TopologyBuilder("kinds")
        builder.set_spout("s", _spout())
        builder.add_operator("z", Sink()).shuffle_from("s")
        topology = builder.build()
        assert topology.component("z").kind is ComponentKind.SINK

    def test_grouping_constructors(self):
        builder = TopologyBuilder("groupings")
        builder.set_spout("s", _spout())
        builder.add_operator("f", _op()).fields_from("s", 0)
        builder.add_operator("b", _op()).broadcast_from("f")
        builder.add_operator("g", _op()).global_from("b")
        builder.add_sink("z", Sink()).shuffle_from("g")
        topology = builder.build()
        kinds = [type(e.grouping).__name__ for e in topology.edges]
        assert kinds == [
            "FieldsGrouping",
            "BroadcastGrouping",
            "GlobalGrouping",
            "ShuffleGrouping",
        ]

    def test_describe_lists_everything(self):
        builder = TopologyBuilder("desc")
        builder.set_spout("s", _spout())
        builder.add_sink("z", Sink()).shuffle_from("s")
        text = builder.build().describe()
        assert "s" in text and "z" in text and "shuffle" in text


class TestValidation:
    def test_no_spout_rejected(self):
        builder = TopologyBuilder("bad")
        with pytest.raises(TopologyError, match="no spout"):
            builder.build()

    def test_duplicate_name_rejected(self):
        builder = TopologyBuilder("bad")
        builder.set_spout("s", _spout())
        with pytest.raises(TopologyError, match="duplicate"):
            builder.set_spout("s", _spout())

    def test_unknown_producer_rejected(self):
        builder = TopologyBuilder("bad")
        builder.set_spout("s", _spout())
        with pytest.raises(TopologyError, match="unknown producer"):
            builder.add_operator("a", _op()).shuffle_from("ghost")

    def test_spout_cannot_consume(self):
        builder = TopologyBuilder("bad")
        builder.set_spout("s", _spout())
        builder.add_operator("a", _op()).shuffle_from("s")
        from repro.dsps.streams import StreamEdge

        with pytest.raises(TopologyError, match="cannot consume"):
            builder._add_edge(StreamEdge(producer="a", consumer="s"))

    def test_orphan_component_rejected(self):
        builder = TopologyBuilder("bad")
        builder.set_spout("s", _spout())
        builder.add_sink("z", Sink()).shuffle_from("s")
        builder.add_operator("lonely", _op())  # never connected
        with pytest.raises(TopologyError, match="no input stream|unreachable"):
            builder.build()

    def test_wrong_component_type_rejected(self):
        builder = TopologyBuilder("bad")
        with pytest.raises(TopologyError, match="expected a Spout"):
            builder.set_spout("s", _op())
        builder.set_spout("ok", _spout())
        with pytest.raises(TopologyError, match="expected a Sink"):
            builder.add_sink("z", _op())

    def test_zero_parallelism_rejected(self):
        builder = TopologyBuilder("bad")
        with pytest.raises(TopologyError, match="parallelism"):
            builder.set_spout("s", _spout(), parallelism=0)

    def test_empty_name_rejected(self):
        with pytest.raises(TopologyError):
            TopologyBuilder("")

    def test_unknown_component_lookup(self):
        builder = TopologyBuilder("t")
        builder.set_spout("s", _spout())
        builder.add_sink("z", Sink()).shuffle_from("s")
        topology = builder.build()
        with pytest.raises(TopologyError):
            topology.component("nope")

    def test_filter_operator_accepted(self):
        builder = TopologyBuilder("t")
        builder.set_spout("s", _spout())
        builder.add_operator("f", FilterOperator(lambda v: True)).shuffle_from("s")
        builder.add_sink("z", Sink()).shuffle_from("f")
        assert len(builder.build()) == 3
