"""Documentation integrity tests (tools/check_docs.py).

Tier-1 runs the cheap checks — every relative link in README/docs
resolves and every docs page is reachable from the entry points — plus
unit coverage of the checker's own parsing, so a broken checker cannot
green-light broken docs.  Snippet *execution* is exercised by the CI
``docs-check`` job (and here only through one trivial inline snippet).
"""

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOL = REPO_ROOT / "tools" / "check_docs.py"

sys.path.insert(0, str(TOOL.parent))

import check_docs  # noqa: E402


class TestRepositoryDocs:
    def test_links_and_reachability(self):
        proc = subprocess.run(
            [sys.executable, str(TOOL), "--links-only"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_every_docs_page_is_checked(self):
        checked = {page.name for page in check_docs.pages_under_check()}
        on_disk = {page.name for page in (REPO_ROOT / "docs").glob("*.md")}
        assert on_disk <= checked
        assert "README.md" in checked


class TestParser:
    def test_extracts_links_outside_fences_only(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "[real](target.md) and ![img](pic.png)\n"
            "```python\n"
            "x = '[not a link](inside-fence.md)'\n"
            "```\n"
            "[external](https://example.com) [frag](#section)\n"
        )
        links, snippets = check_docs.parse_page(page)
        assert [link.target for link in links] == ["target.md", "pic.png"]
        assert snippets == []

    def test_fragment_is_stripped_from_target(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("[jump](other.md#some-heading)\n")
        links, _ = check_docs.parse_page(page)
        assert [link.target for link in links] == ["other.md"]

    def test_only_marked_snippets_are_collected(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "```bash\necho illustrative\n```\n"
            "```bash run\necho executable\n```\n"
            "```python run\nprint('ok')\n```\n"
        )
        _, snippets = check_docs.parse_page(page)
        assert [(s.language, s.body) for s in snippets] == [
            ("bash", "echo executable"),
            ("python", "print('ok')"),
        ]
        assert snippets[0].line == 4

    def test_broken_link_is_reported(self, tmp_path, monkeypatch):
        page = tmp_path / "README.md"
        page.write_text("[gone](missing.md)\n")
        monkeypatch.setattr(check_docs, "REPO_ROOT", tmp_path)
        errors, graph = check_docs.check_links([page])
        assert len(errors) == 1
        assert "missing.md" in errors[0]
        assert graph[page] == set()

    def test_unreachable_docs_page_is_reported(self, tmp_path, monkeypatch):
        readme = tmp_path / "README.md"
        docs = tmp_path / "docs"
        docs.mkdir()
        linked = docs / "linked.md"
        orphan = docs / "orphan.md"
        readme.write_text("[linked](docs/linked.md)\n")
        linked.write_text("back to [README](../README.md)\n")
        orphan.write_text("nobody links here\n")
        monkeypatch.setattr(check_docs, "REPO_ROOT", tmp_path)
        pages = [readme, linked, orphan]
        errors, graph = check_docs.check_links(pages)
        assert errors == []
        problems = check_docs.check_reachability(pages, graph)
        assert len(problems) == 1
        assert "orphan.md" in problems[0]


class TestSnippetExecution:
    def test_passing_and_failing_snippets(self, tmp_path):
        ok = check_docs.Snippet(tmp_path / "p.md", 1, "python", "print(1)")
        assert check_docs.run_snippet(ok) is None
        bad = check_docs.Snippet(
            tmp_path / "p.md", 1, "bash", "exit 3"
        )
        problem = check_docs.run_snippet(bad)
        assert problem is not None and "exited 3" in problem

    def test_unsupported_language_is_an_error(self, tmp_path):
        weird = check_docs.Snippet(tmp_path / "p.md", 1, "ruby", "puts 1")
        assert "unsupported" in check_docs.run_snippet(weird)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
