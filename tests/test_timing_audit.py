"""Timing-source audit: durations use the monotonic clock.

``time.time()`` can jump (NTP adjustments, DST); every elapsed-time
measurement in the source tree must use ``time.perf_counter()``.  The one
sanctioned exception is the wall-clock *timestamp* stamped into exported
metric reports (``metrics/export.py``), which genuinely wants epoch time.
"""

from __future__ import annotations

import re
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"

#: Files allowed to call ``time.time()`` — wall-clock timestamps only.
WALL_CLOCK_ALLOWED = {"repro/metrics/export.py"}


def _python_sources():
    return [p for p in SRC.rglob("*.py") if "__pycache__" not in p.parts]


def test_time_time_only_in_export():
    pattern = re.compile(r"\btime\.time\(")
    offenders = []
    for path in _python_sources():
        rel = path.relative_to(SRC).as_posix()
        if pattern.search(path.read_text()) and rel not in WALL_CLOCK_ALLOWED:
            offenders.append(rel)
    assert not offenders, (
        f"duration measurements must use time.perf_counter(); "
        f"time.time() found in {offenders}"
    )


def test_export_keeps_wall_clock_timestamp():
    """The report timestamp must stay wall-clock — perf_counter has an
    arbitrary epoch and would make ``generated_unix`` meaningless."""
    export = (SRC / "repro" / "metrics" / "export.py").read_text()
    assert "time.time()" in export


def test_no_bare_clock_imports():
    """``from time import time`` would dodge the audit above."""
    pattern = re.compile(r"from\s+time\s+import\s+([^\n]*)")
    offenders = []
    for path in _python_sources():
        for match in pattern.finditer(path.read_text()):
            names = [n.strip() for n in match.group(1).split(",")]
            if any(n == "time" or n.startswith("time as") for n in names):
                offenders.append(path.relative_to(SRC).as_posix())
    assert not offenders, f"import time and qualify calls: {offenders}"
