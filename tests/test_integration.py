"""End-to-end integration tests tying optimizer, simulators and apps."""

import pytest

from repro.core import PerformanceModel, RLASOptimizer
from repro.core.scaling import saturation_ingress
from repro.hardware import server_a, server_b
from repro.simulation import DiscreteEventSimulator, FlowSimulator
from repro.metrics import communication_matrix, relative_error


@pytest.fixture(scope="module")
def wc_optimized(wc_app):
    """RLAS-optimized WC on a 2-socket slice of Server A (fast)."""
    topology, profiles = wc_app
    machine = server_a(2)
    model = PerformanceModel(profiles, machine)
    rate = saturation_ingress(topology, model)
    plan = RLASOptimizer(
        topology, profiles, machine, rate, compress_ratio=5, max_iterations=24
    ).optimize()
    return topology, profiles, machine, rate, plan


class TestModelVsMeasurement:
    def test_relative_error_within_paper_range(self, wc_optimized):
        """Table 4: the model predicts measured throughput within ~15%."""
        topology, profiles, machine, rate, plan = wc_optimized
        measured = FlowSimulator(profiles, machine).simulate(
            plan.expanded_plan, rate
        )
        error = relative_error(measured.throughput, plan.realized_throughput)
        assert error < 0.2

    def test_des_throughput_consistent_with_flow(self, wc_optimized):
        """The tuple-level simulator sustains a comparable rate."""
        topology, profiles, machine, rate, plan = wc_optimized
        flow = FlowSimulator(profiles, machine).simulate(plan.expanded_plan, rate)
        ingress = flow.throughput / 10 * 0.9  # words -> sentences, backed off
        des = DiscreteEventSimulator(profiles, machine, seed=1).run(
            plan.expanded_plan, ingress, max_events=2000
        )
        assert des.throughput == pytest.approx(flow.throughput, rel=0.35)

    def test_latency_reasonable_at_high_load(self, wc_optimized):
        topology, profiles, machine, rate, plan = wc_optimized
        des = DiscreteEventSimulator(profiles, machine, seed=2).run(
            plan.expanded_plan, rate / 10, max_events=2000
        )
        assert 0 < des.latency.p99_ms() < 1000


class TestCommunicationPatterns:
    def test_wc_traffic_concentrates_on_server_a_style_plan(self, wc_optimized):
        topology, profiles, machine, rate, plan = wc_optimized
        model = PerformanceModel(profiles, machine)
        matrix = communication_matrix(plan.expanded_plan, model, rate)
        # WC's splitters live on few sockets: traffic leaves a hot source.
        if matrix.total_fetch_cost() > 0:
            assert matrix.concentration() > 1.0 / machine.n_sockets


class TestCrossMachine:
    def test_rlas_runs_on_server_b_slice(self, wc_app):
        topology, profiles = wc_app
        machine = server_b(2)
        model = PerformanceModel(profiles, machine)
        rate = saturation_ingress(topology, model)
        plan = RLASOptimizer(
            topology, profiles, machine, rate, compress_ratio=5, max_iterations=16
        ).optimize()
        assert plan.realized_throughput > 0
        plan.expanded_plan.validate_complete(machine)

    def test_more_sockets_more_throughput(self, wc_app):
        topology, profiles = wc_app
        results = []
        for sockets in (1, 2):
            machine = server_a(sockets)
            model = PerformanceModel(profiles, machine)
            rate = saturation_ingress(topology, model)
            plan = RLASOptimizer(
                topology, profiles, machine, rate, compress_ratio=5, max_iterations=16
            ).optimize()
            results.append(plan.realized_throughput)
        assert results[1] > results[0]


class TestFunctionalConsistency:
    def test_optimized_replication_runs_functionally(self, wc_optimized):
        """The optimized replication actually executes the real WC code."""
        from repro.dsps import LocalEngine

        topology, profiles, machine, rate, plan = wc_optimized
        engine = LocalEngine(topology, replication=plan.replication)
        run = engine.run(200)
        assert run.sink_received() == 2000
