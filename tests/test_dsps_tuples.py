"""Unit tests for tuples, jumbo tuples and size accounting."""

import pytest

from repro.dsps import (
    TUPLE_HEADER_BYTES,
    JumboTuple,
    StreamTuple,
    clear_payload_cache,
    payload_bytes,
    payload_cache_stats,
)


class TestPayloadBytes:
    def test_string_scales_with_length(self):
        assert payload_bytes(["ab"]) > payload_bytes(["a"])

    def test_int_and_float(self):
        assert payload_bytes([1]) == 28
        assert payload_bytes([1.5]) == 24

    def test_bool_is_not_counted_as_int(self):
        assert payload_bytes([True]) == 16

    def test_none(self):
        assert payload_bytes([None]) == 16

    def test_nested_list(self):
        flat = payload_bytes([1, 2])
        nested = payload_bytes([[1, 2]])
        assert nested == flat + 56

    def test_dict(self):
        assert payload_bytes([{"a": 1}]) > payload_bytes(["a", 1])

    def test_bytes_payload(self):
        assert payload_bytes([b"abc"]) == 33 + 3

    def test_unknown_object_gets_flat_charge(self):
        class Thing:
            pass

        assert payload_bytes([Thing()]) == 48

    def test_empty(self):
        assert payload_bytes([]) == 0


class TestPayloadCache:
    """Shape-keyed memoization of :func:`payload_bytes`."""

    def setup_method(self):
        clear_payload_cache()

    def teardown_method(self):
        clear_payload_cache()

    def test_same_shape_hits_cache(self):
        first = payload_bytes(("word", 3))
        assert payload_cache_stats() == {"hits": 0, "misses": 1, "entries": 1}
        # Different values, same shape (str of length 4, int): one lookup.
        assert payload_bytes(("carb", 7)) == first
        assert payload_cache_stats()["hits"] == 1
        assert payload_cache_stats()["entries"] == 1

    def test_different_lengths_are_different_shapes(self):
        payload_bytes(("a",))
        payload_bytes(("ab",))
        stats = payload_cache_stats()
        assert stats["hits"] == 0
        assert stats["misses"] == 2
        assert stats["entries"] == 2

    def test_cached_size_matches_uncached(self):
        values = ("device-1", 2.5, True, None, b"xyz")
        cold = payload_bytes(values)
        warm = payload_bytes(values)
        assert cold == warm
        assert payload_cache_stats()["hits"] == 1

    def test_containers_bypass_cache(self):
        payload_bytes(([1, 2],))
        payload_bytes(({"k": 1},))
        stats = payload_cache_stats()
        assert stats == {"hits": 0, "misses": 0, "entries": 0}

    def test_scalar_subclass_bypasses_cache(self):
        class FancyInt(int):
            pass

        # A subclass may carry extra state; its size must not be pinned
        # to (or taken from) the plain-int shape entry.
        payload_bytes((FancyInt(3),))
        assert payload_cache_stats()["entries"] == 0

    def test_clear_resets_counters(self):
        payload_bytes((1,))
        payload_bytes((2,))
        clear_payload_cache()
        assert payload_cache_stats() == {"hits": 0, "misses": 0, "entries": 0}


class TestStreamTuple:
    def test_size_includes_header(self):
        item = StreamTuple(values=("abc",))
        assert item.size_bytes == item.payload_size_bytes + TUPLE_HEADER_BYTES

    def test_derive_keeps_event_time(self):
        parent = StreamTuple(values=("x",), event_time_ns=123.0)
        child = parent.derive(("y", 1), stream="out", source_task=5)
        assert child.event_time_ns == 123.0
        assert child.stream == "out"
        assert child.source_task == 5
        assert child.values == ("y", 1)

    def test_frozen(self):
        item = StreamTuple(values=("x",))
        with pytest.raises(AttributeError):
            item.values = ("y",)


class TestJumboTuple:
    def test_shares_one_header(self):
        tuples = [StreamTuple(values=(i,)) for i in range(10)]
        jumbo = JumboTuple(source_task=0, target_task=1, tuples=list(tuples))
        individual = sum(t.size_bytes for t in tuples)
        assert jumbo.size_bytes == individual - 9 * TUPLE_HEADER_BYTES

    def test_per_tuple_overhead_amortizes(self):
        jumbo = JumboTuple(source_task=0, target_task=1)
        assert jumbo.per_tuple_overhead_bytes == TUPLE_HEADER_BYTES
        for i in range(4):
            jumbo.append(StreamTuple(values=(i,)))
        assert jumbo.per_tuple_overhead_bytes == TUPLE_HEADER_BYTES / 4

    def test_iteration_and_len(self):
        jumbo = JumboTuple(source_task=0, target_task=1)
        jumbo.append(StreamTuple(values=(1,)))
        jumbo.append(StreamTuple(values=(2,)))
        assert len(jumbo) == 2
        assert [t.values[0] for t in jumbo] == [1, 2]
