"""Unit tests for the operator primitives."""

import pytest

from repro.dsps import (
    FilterOperator,
    FlatMapOperator,
    IterableSpout,
    MapOperator,
    OperatorContext,
    Sink,
    StreamTuple,
)


def _tuple(*values):
    return StreamTuple(values=values)


class TestMapOperator:
    def test_maps_values(self):
        op = MapOperator(lambda v: (v[0] * 2,))
        assert list(op.process(_tuple(3))) == [("default", (6,))]

    def test_none_drops_tuple(self):
        op = MapOperator(lambda v: None)
        assert list(op.process(_tuple(1))) == []

    def test_custom_stream(self):
        op = MapOperator(lambda v: v, stream="side")
        assert list(op.process(_tuple(1)))[0][0] == "side"


class TestFlatMapOperator:
    def test_expands(self):
        op = FlatMapOperator(lambda v: [(x,) for x in range(v[0])])
        out = list(op.process(_tuple(3)))
        assert [v for _, v in out] == [(0,), (1,), (2,)]

    def test_empty_expansion(self):
        op = FlatMapOperator(lambda v: [])
        assert list(op.process(_tuple(1))) == []


class TestFilterOperator:
    def test_passes_and_drops(self):
        op = FilterOperator(lambda v: v[0] > 0)
        assert list(op.process(_tuple(1))) == [("default", (1,))]
        assert list(op.process(_tuple(-1))) == []


class TestSink:
    def test_counts(self):
        sink = Sink()
        for i in range(5):
            list(sink.process(_tuple(i)))
        assert sink.received == 5

    def test_sample_retention_bounded(self):
        sink = Sink(keep_samples=3)
        for i in range(10):
            list(sink.process(_tuple(i)))
        assert len(sink.samples) == 3
        assert sink.received == 10

    def test_on_tuple_hook(self):
        class Custom(Sink):
            def __init__(self):
                super().__init__()
                self.total = 0

            def on_tuple(self, item):
                self.total += item.values[0]

        sink = Custom()
        for i in range(4):
            list(sink.process(_tuple(i)))
        assert sink.total == 6


class TestClone:
    def test_clone_has_independent_state(self):
        sink = Sink()
        list(sink.process(_tuple(1)))
        clone = sink.clone()
        assert clone.received == 1  # deep copy of current state
        list(clone.process(_tuple(2)))
        assert clone.received == 2
        assert sink.received == 1


class TestIterableSpout:
    def test_replays_iterable(self):
        spout = IterableSpout([(1,), (2,), (3,)])
        spout.prepare(OperatorContext("s", 0, 1, 0))
        assert list(spout.next_batch(10)) == [(1,), (2,), (3,)]

    def test_respects_batch_limit(self):
        spout = IterableSpout([(i,) for i in range(10)])
        spout.prepare(OperatorContext("s", 0, 1, 0))
        assert len(list(spout.next_batch(4))) == 4
        assert len(list(spout.next_batch(100))) == 6

    def test_works_without_prepare(self):
        spout = IterableSpout([(1,)])
        assert list(spout.next_batch(5)) == [(1,)]
