"""Tests for the executor backends (inline + process pool).

The parity suite runs every example application through the inline
backend and the process-pool backend under the same lowering and asserts
identical sink multisets and per-task tuple counts.  Exactness depends on
the app's statefulness:

* WC tolerates replication everywhere — its keyed state (running word
  counts) is order-independent across input interleavings;
* FD/SD keep their order-sensitive stage behind a single parser task so
  per-key input order is preserved through the content-based groupings;
* LR's multi-input stateful joins need the process backend's ``ordered``
  mode, which processes input edges in the same strict declaration order
  the inline backend drains them in.
"""

from collections import Counter as Multiset

import pytest

from repro.apps import load_application
from repro.core.plan import collocated_plan
from repro.dsps import LocalEngine
from repro.errors import ExecutionError
from repro.metrics import MetricsRegistry
from repro.runtime import InlineBackend, ProcessPoolBackend, resolve_backend

EVENTS = 300


def run_app(app, *, backend="inline", replication=None, **kwargs):
    topology, _profiles = load_application(app)
    # Sinks sample nothing by default; retain everything so runs can be
    # compared value-for-value.
    topology.component("sink").template.keep_samples = 10**6
    engine = LocalEngine(
        topology, replication=replication, backend=backend, **kwargs
    )
    return engine.run(EVENTS)


def sink_multiset(result):
    return Multiset(
        tuple(item.values)
        for sinks in result.sinks.values()
        for sink in sinks
        for item in sink.samples
    )


def task_counts(result):
    return {
        task_id: (stats.tuples_in, stats.tuples_out)
        for task_id, stats in result.task_stats.items()
    }


def assert_parity(reference, candidate):
    assert candidate.events_ingested == reference.events_ingested
    assert candidate.sink_received() == reference.sink_received()
    assert task_counts(candidate) == task_counts(reference)
    assert sink_multiset(candidate) == sink_multiset(reference)


class TestBackendResolution:
    def test_names(self):
        assert isinstance(resolve_backend("inline"), InlineBackend)
        assert isinstance(resolve_backend("process"), ProcessPoolBackend)

    def test_instance_passthrough(self):
        backend = InlineBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_name(self):
        with pytest.raises(ExecutionError, match="unknown backend 'threads'"):
            resolve_backend("threads")

    def test_unknown_name_lists_valid_backends(self):
        with pytest.raises(ExecutionError, match="inline"):
            resolve_backend("gpu")

    def test_bad_worker_count(self):
        with pytest.raises(ExecutionError):
            ProcessPoolBackend(n_workers=0)

    @pytest.mark.parametrize("n", [0, -1, -100])
    def test_resolve_rejects_bad_worker_count(self, n):
        with pytest.raises(ExecutionError, match="n_workers must be >= 1"):
            resolve_backend("process", n_workers=n)

    @pytest.mark.parametrize("capacity", [0, -1])
    def test_engine_rejects_bad_queue_capacity(self, capacity):
        topology, _ = load_application("wc")
        with pytest.raises(ExecutionError, match="queue_capacity must be positive"):
            LocalEngine(topology, queue_capacity=capacity)

    @pytest.mark.parametrize("budget", [0, -64])
    def test_engine_rejects_bad_queue_budget(self, budget):
        topology, _ = load_application("wc")
        with pytest.raises(ExecutionError, match="queue_budget must be positive"):
            LocalEngine(topology, queue_budget=budget)


class TestInlineBounded:
    """Bounded inline runs must match the unbounded (seed) semantics."""

    @pytest.mark.parametrize("app", ["wc", "fd", "sd", "lr"])
    def test_bounded_matches_unbounded(self, app):
        reference = run_app(app)
        bounded = run_app(app, queue_capacity=128)
        assert_parity(reference, bounded)

    def test_single_chain_is_bit_for_bit(self):
        # One replica per component: every queue has one producer, so even
        # the per-sink arrival sequence is reproduced exactly.
        reference = run_app("wc")
        bounded = run_app("wc", queue_budget=256)
        ref_samples = [
            tuple(i.values) for s in reference.sinks["sink"] for i in s.samples
        ]
        bnd_samples = [
            tuple(i.values) for s in bounded.sinks["sink"] for i in s.samples
        ]
        assert ref_samples == bnd_samples

    def test_backpressure_blocks_and_bounds(self):
        registry = MetricsRegistry()
        topology, _ = load_application("wc")
        engine = LocalEngine(
            topology, batch_size=32, queue_capacity=32, registry=registry
        )
        result = engine.run(EVENTS)
        assert result.sink_received() == EVENTS * 10
        snapshot = registry.snapshot()
        assert snapshot["counters"]["engine.run.backpressure_blocks"] > 0
        depths = {
            name: value
            for name, value in snapshot["gauges"].items()
            if name.endswith(".max_depth_tuples")
        }
        assert depths, "expected per-queue depth gauges"
        for name, depth in depths.items():
            capacity = snapshot["gauges"][
                name.replace(".max_depth_tuples", ".capacity_tuples")
            ]
            assert depth <= capacity

    def test_blocked_time_is_accounted(self):
        registry = MetricsRegistry()
        topology, _ = load_application("wc")
        engine = LocalEngine(
            topology, batch_size=32, queue_capacity=32, registry=registry
        )
        engine.run(EVENTS)
        snapshot = registry.snapshot()
        blocked = [
            value
            for name, value in snapshot["counters"].items()
            if name.endswith(".blocked_batches")
        ]
        assert sum(blocked) > 0


class TestProcessParity:
    def test_wc_replicated_arrival_mode(self):
        replication = {
            "spout": 1, "parser": 2, "splitter": 2, "counter": 2, "sink": 1,
        }
        reference = run_app("wc", replication=replication)
        candidate = run_app(
            "wc",
            replication=replication,
            backend=ProcessPoolBackend(n_workers=2),
        )
        assert_parity(reference, candidate)

    def test_fd_single_parser(self):
        replication = {"spout": 1, "parser": 1, "predictor": 2, "sink": 1}
        reference = run_app("fd", replication=replication)
        candidate = run_app(
            "fd",
            replication=replication,
            backend=ProcessPoolBackend(n_workers=2),
        )
        assert_parity(reference, candidate)
        assert sum(
            s.fraud_count for s in candidate.sinks["sink"]
        ) == sum(s.fraud_count for s in reference.sinks["sink"])

    def test_sd_single_parser(self):
        replication = {
            "spout": 1,
            "parser": 1,
            "moving_average": 2,
            "spike_detector": 2,
            "sink": 1,
        }
        reference = run_app("sd", replication=replication)
        candidate = run_app(
            "sd",
            replication=replication,
            backend=ProcessPoolBackend(n_workers=2),
        )
        assert_parity(reference, candidate)
        assert sum(
            s.spike_count for s in candidate.sinks["sink"]
        ) == sum(s.spike_count for s in reference.sinks["sink"])

    def test_lr_ordered_mode(self):
        replication = None  # parallelism hints (all 1 for LR)
        reference = run_app("lr", replication=replication)
        candidate = run_app(
            "lr",
            replication=replication,
            backend=ProcessPoolBackend(n_workers=2, ordered=True),
        )
        assert_parity(reference, candidate)

    def test_single_worker_degenerates_cleanly(self):
        reference = run_app("wc")
        candidate = run_app("wc", backend=ProcessPoolBackend(n_workers=1))
        assert_parity(reference, candidate)

    def test_bounded_process_run_reports_runtime_metrics(self):
        registry = MetricsRegistry()
        topology, _ = load_application("wc")
        engine = LocalEngine(
            topology,
            queue_budget=256,
            registry=registry,
            backend=ProcessPoolBackend(n_workers=2),
        )
        result = engine.run(EVENTS)
        assert result.sink_received() == EVENTS * 10
        snapshot = registry.snapshot()
        assert snapshot["gauges"]["runtime.run.workers"] == 2
        busy = [
            value
            for name, value in snapshot["gauges"].items()
            if name.startswith("runtime.worker.") and name.endswith(".busy_fraction")
        ]
        assert len(busy) == 2
        assert all(0.0 <= b <= 1.0 for b in busy)
        assert snapshot["counters"]["runtime.run.pickled_bytes"] > 0


class TestFromPlan:
    def test_plan_driven_engine_is_bounded_and_placed(self):
        topology, _ = load_application("wc")
        probe = LocalEngine(topology)  # reuse its graph construction
        plan = collocated_plan(probe.graph, socket=1)
        engine = LocalEngine.from_plan(plan, backend="inline")
        assert engine.spec.bounded
        assert {rt.socket for rt in engine.spec.tasks} == {1}
        result = engine.run(200)
        assert result.sink_received() == 200 * 10
