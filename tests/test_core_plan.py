"""Unit tests for execution plans."""

import pytest

from repro.core import ExecutionPlan, collocated_plan, empty_plan
from repro.dsps import ExecutionGraph
from repro.errors import PlanError

from tests.conftest import build_pipeline


@pytest.fixture()
def graph():
    return ExecutionGraph(
        build_pipeline(), {"spout": 1, "stage": 2, "fan": 2, "sink": 1}
    )


class TestPlanBasics:
    def test_empty_plan(self, graph):
        plan = empty_plan(graph)
        assert not plan.is_complete
        assert plan.unplaced_tasks == [t.task_id for t in graph.tasks]
        assert plan.socket_of(0) is None

    def test_collocated_plan(self, graph):
        plan = collocated_plan(graph, socket=2)
        assert plan.is_complete
        assert plan.used_sockets() == {2}
        assert plan.replicas_on(2) == graph.total_replicas

    def test_assign_accumulates(self, graph):
        plan = empty_plan(graph).assign({0: 1}).assign({1: 2})
        assert plan.socket_of(0) == 1
        assert plan.socket_of(1) == 2
        assert len(plan.placed_tasks) == 2

    def test_assign_is_persistent(self, graph):
        base = empty_plan(graph)
        derived = base.assign({0: 1})
        assert base.socket_of(0) is None
        assert derived.socket_of(0) == 1

    def test_reassignment_rejected(self, graph):
        plan = empty_plan(graph).assign({0: 1})
        with pytest.raises(PlanError, match="already placed"):
            plan.assign({0: 2})

    def test_idempotent_same_socket_ok(self, graph):
        plan = empty_plan(graph).assign({0: 1}).assign({0: 1})
        assert plan.socket_of(0) == 1

    def test_unknown_task_rejected(self, graph):
        with pytest.raises(PlanError):
            ExecutionPlan(graph=graph, placement={99: 0})

    def test_collocated_check(self, graph):
        plan = empty_plan(graph).assign({0: 1, 1: 1, 2: 3})
        assert plan.collocated(0, 1)
        assert not plan.collocated(0, 2)
        assert not plan.collocated(0, 5)

    def test_tasks_on_socket(self, graph):
        plan = empty_plan(graph).assign({0: 1, 3: 1})
        labels = [t.task_id for t in plan.tasks_on(1)]
        assert labels == [0, 3]


class TestValidation:
    def test_validate_complete_rejects_partial(self, graph, tiny_machine):
        plan = empty_plan(graph).assign({0: 0})
        with pytest.raises(PlanError, match="incomplete"):
            plan.validate_complete(tiny_machine)

    def test_validate_complete_rejects_bad_socket(self, graph, tiny_machine):
        plan = collocated_plan(graph, socket=7)  # tiny machine has 4 sockets
        with pytest.raises(PlanError, match="sockets"):
            plan.validate_complete(tiny_machine)

    def test_validate_complete_accepts_good_plan(self, graph, tiny_machine):
        collocated_plan(graph, socket=3).validate_complete(tiny_machine)


class TestSignatures:
    def test_signature_equality(self, graph):
        a = empty_plan(graph).assign({0: 1, 1: 2})
        b = empty_plan(graph).assign({1: 2, 0: 1})
        assert a.signature() == b.signature()

    def test_signature_differs_on_socket(self, graph):
        a = empty_plan(graph).assign({0: 1})
        b = empty_plan(graph).assign({0: 2})
        assert a.signature() != b.signature()


class TestDescribe:
    def test_describe_mentions_unplaced(self, graph):
        plan = empty_plan(graph).assign({0: 0})
        text = plan.describe()
        assert "socket 0" in text
        assert "unplaced" in text

    def test_replica_assignment_roundtrip(self, graph):
        plan = collocated_plan(graph, socket=1)
        assignment = plan.replica_assignment()
        assert all(socket == 1 for socket in assignment.values())
        assert len(assignment) == graph.total_replicas
