"""Unit tests for the metrics and reporting helpers."""

import numpy as np
import pytest

from repro.core import PerformanceModel, collocated_plan
from repro.core.plan import ExecutionPlan
from repro.dsps import ExecutionGraph
from repro.errors import SimulationError
from repro.metrics import (
    communication_matrix,
    format_series,
    format_table,
    relative_error,
    speedup,
)

from tests.conftest import build_pipeline, pipeline_profiles


@pytest.fixture()
def setup(tiny_machine):
    topology = build_pipeline()
    profiles = pipeline_profiles(topology)
    model = PerformanceModel(profiles, tiny_machine)
    graph = ExecutionGraph(topology, {n: 1 for n in topology.components})
    return model, graph


class TestCommunicationMatrix:
    def test_local_plan_is_silent(self, setup):
        model, graph = setup
        matrix = communication_matrix(collocated_plan(graph), model, 1e6)
        assert matrix.total_fetch_cost() == 0.0
        assert matrix.concentration() == 0.0

    def test_cross_socket_fetch_recorded(self, setup):
        model, graph = setup
        plan = ExecutionPlan(graph=graph, placement={0: 0, 1: 1, 2: 1, 3: 1})
        matrix = communication_matrix(plan, model, 1e6)
        assert matrix.fetch_ns_per_s[0, 1] > 0
        assert matrix.bytes_per_s[0, 1] > 0
        assert matrix.hottest_source() == 0
        assert matrix.concentration() == pytest.approx(1.0)

    def test_spread_traffic_less_concentrated(self, setup):
        model, graph = setup
        chain = ExecutionPlan(graph=graph, placement={0: 0, 1: 1, 2: 2, 3: 3})
        matrix = communication_matrix(chain, model, 1e6)
        assert matrix.concentration() < 1.0

    def test_incomplete_plan_rejected(self, setup):
        from repro.core.plan import empty_plan

        model, graph = setup
        with pytest.raises(SimulationError):
            communication_matrix(empty_plan(graph), model, 1e6)

    def test_format_table_readable(self, setup):
        model, graph = setup
        plan = ExecutionPlan(graph=graph, placement={0: 0, 1: 1, 2: 1, 3: 1})
        text = communication_matrix(plan, model, 1e6).format_table()
        assert "Tf matrix" in text
        assert "S0" in text

    def test_reuses_supplied_result(self, setup):
        model, graph = setup
        plan = ExecutionPlan(graph=graph, placement={0: 0, 1: 1, 2: 1, 3: 1})
        result = model.evaluate(plan, 1e6, collect_flows=True)
        matrix = communication_matrix(plan, model, 1e6, result=result)
        assert matrix.fetch_ns_per_s[0, 1] > 0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            ["app", "value"],
            [["wc", 1234.5], ["fd", 0.25]],
            title="Demo",
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "1,234.5" in text
        assert "0.2500" in text

    def test_format_series(self):
        text = format_series("WC", [(1, 10.0), (2, 20.0)], unit="K events/s")
        assert "WC (K events/s)" in text
        assert "1=10.0" in text

    def test_relative_error(self):
        assert relative_error(100.0, 92.0) == pytest.approx(0.08)
        assert relative_error(0.0, 1.0) == float("inf")

    def test_relative_error_both_zero(self):
        # Regression: two exact zeros agree perfectly — the error is 0,
        # not inf (a zero estimate of a zero measurement is not wrong).
        assert relative_error(0.0, 0.0) == 0.0

    def test_speedup(self):
        assert speedup(20.0, 2.0) == 10.0
        assert speedup(1.0, 0.0) == float("inf")
