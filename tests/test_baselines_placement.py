"""Unit tests for the OS / FF / RR placement baselines."""

import pytest

from repro.baselines import first_fit, os_scheduler, place_with_strategy, round_robin
from repro.core import PerformanceModel
from repro.dsps import ExecutionGraph
from repro.errors import PlanError

from tests.conftest import build_pipeline, pipeline_profiles


@pytest.fixture()
def setup(tiny_machine):
    topology = build_pipeline()
    profiles = pipeline_profiles(topology)
    model = PerformanceModel(profiles, tiny_machine)
    graph = ExecutionGraph(topology, {n: 2 for n in topology.components})
    return model, graph


class TestRoundRobin:
    def test_spreads_over_all_sockets(self, setup, tiny_machine):
        model, graph = setup
        plan = round_robin(graph, tiny_machine)
        assert plan.is_complete
        assert plan.used_sockets() == set(tiny_machine.sockets)

    def test_deterministic(self, setup, tiny_machine):
        model, graph = setup
        a = round_robin(graph, tiny_machine)
        b = round_robin(graph, tiny_machine)
        assert a.placement == b.placement

    def test_balanced_counts(self, setup, tiny_machine):
        model, graph = setup
        plan = round_robin(graph, tiny_machine)
        counts = [plan.replicas_on(s) for s in tiny_machine.sockets]
        assert max(counts) - min(counts) <= 1


class TestFirstFit:
    def test_produces_complete_plan(self, setup):
        model, graph = setup
        plan = first_fit(graph, model, 1e6)
        assert plan.is_complete

    def test_greedy_packs_low_sockets_first(self, setup, tiny_machine):
        model, graph = setup
        plan = first_fit(graph, model, 1e5)
        # At light load everything fits the first socket(s).
        assert min(plan.used_sockets()) == 0
        assert len(plan.used_sockets()) <= 2

    def test_relaxes_when_nothing_fits(self, tiny_machine):
        """More replicas than cores: FF must still return a (bad) plan."""
        topology = build_pipeline()
        profiles = pipeline_profiles(topology)
        model = PerformanceModel(profiles, tiny_machine)
        graph = ExecutionGraph(topology, {n: 5 for n in topology.components})
        plan = first_fit(graph, model, 1e7)
        assert plan.is_complete
        # 20 replicas on 16 cores: some socket is oversubscribed.
        assert any(
            plan.replicas_on(s) > tiny_machine.cores_per_socket
            for s in tiny_machine.sockets
        )


class TestOsScheduler:
    def test_load_balanced(self, setup, tiny_machine):
        model, graph = setup
        plan = os_scheduler(graph, tiny_machine, seed=1)
        counts = [plan.replicas_on(s) for s in tiny_machine.sockets]
        assert max(counts) - min(counts) <= 1

    def test_seed_controls_layout(self, setup, tiny_machine):
        model, graph = setup
        layouts = {
            tuple(sorted(os_scheduler(graph, tiny_machine, seed=s).placement.items()))
            for s in range(5)
        }
        assert len(layouts) > 1


class TestDispatch:
    def test_strategy_names(self, setup, tiny_machine):
        model, graph = setup
        for name in ("OS", "FF", "RR"):
            plan = place_with_strategy(name, graph, model, 1e6)
            assert plan.is_complete

    def test_unknown_strategy(self, setup):
        model, graph = setup
        with pytest.raises(PlanError):
            place_with_strategy("magic", graph, model, 1e6)


class TestQuality:
    def test_rlas_beats_heuristics_under_pressure(self, setup, tiny_machine):
        """Figure 13's claim on the small machine."""
        from repro.core import PlacementOptimizer

        model, graph = setup
        rate = 1e7
        rlas = PlacementOptimizer(model, rate).optimize(graph)
        assert rlas.plan is not None
        from repro.simulation import measure_throughput

        r_rlas = measure_throughput(rlas.plan, model.profiles, tiny_machine, rate)
        for name in ("OS", "FF", "RR"):
            plan = place_with_strategy(name, graph, model, rate, seed=2)
            r_other = measure_throughput(plan, model.profiles, tiny_machine, rate)
            assert r_rlas >= r_other * 0.95, name
