"""Unit tests for Monte-Carlo random plan sampling (Figure 14)."""

import pytest

from repro.baselines import (
    random_placement,
    random_replication,
    sample_random_plans,
    throughput_cdf,
)
from repro.dsps import ExecutionGraph

import random

from tests.conftest import build_pipeline, pipeline_profiles


class TestRandomReplication:
    def test_hits_limit_exactly(self):
        topology = build_pipeline()
        rng = random.Random(1)
        replication = random_replication(topology, 16, rng)
        assert sum(replication.values()) == 16
        assert all(v >= 1 for v in replication.values())

    def test_deterministic_by_rng(self):
        topology = build_pipeline()
        a = random_replication(topology, 12, random.Random(3))
        b = random_replication(topology, 12, random.Random(3))
        assert a == b


class TestRandomPlacement:
    def test_all_tasks_placed(self, tiny_machine):
        topology = build_pipeline()
        graph = ExecutionGraph(topology, {n: 2 for n in topology.components})
        plan = random_placement(graph, tiny_machine, random.Random(1))
        assert plan.is_complete
        assert all(0 <= s < 4 for s in plan.placement.values())


class TestSampling:
    def test_sample_count_and_positivity(self, tiny_machine):
        topology = build_pipeline()
        profiles = pipeline_profiles(topology)
        samples = sample_random_plans(
            topology, profiles, tiny_machine, 1e7, n_plans=25, seed=2
        )
        assert len(samples) == 25
        assert all(s.throughput > 0 for s in samples)

    def test_seeded_reproducibility(self, tiny_machine):
        topology = build_pipeline()
        profiles = pipeline_profiles(topology)
        a = sample_random_plans(topology, profiles, tiny_machine, 1e7, 10, seed=5)
        b = sample_random_plans(topology, profiles, tiny_machine, 1e7, 10, seed=5)
        assert [s.throughput for s in a] == [s.throughput for s in b]

    def test_rlas_beats_every_random_plan(self, tiny_machine):
        """Figure 14's headline claim, on the small machine."""
        from repro.core import PerformanceModel, RLASOptimizer
        from repro.core.scaling import saturation_ingress
        from repro.simulation import measure_throughput

        topology = build_pipeline()
        profiles = pipeline_profiles(topology)
        model = PerformanceModel(profiles, tiny_machine)
        rate = saturation_ingress(topology, model)
        optimized = RLASOptimizer(
            topology, profiles, tiny_machine, rate, compress_ratio=2
        ).optimize()
        r_rlas = measure_throughput(
            optimized.expanded_plan, profiles, tiny_machine, rate
        )
        samples = sample_random_plans(
            topology, profiles, tiny_machine, rate, n_plans=60, seed=11
        )
        assert all(s.throughput <= r_rlas * 1.02 for s in samples)

    def test_cdf_shape(self, tiny_machine):
        topology = build_pipeline()
        profiles = pipeline_profiles(topology)
        samples = sample_random_plans(
            topology, profiles, tiny_machine, 1e7, n_plans=20, seed=4
        )
        cdf = throughput_cdf(samples)
        values = [v for v, _ in cdf]
        fractions = [f for _, f in cdf]
        assert values == sorted(values)
        assert fractions[-1] == pytest.approx(1.0)
