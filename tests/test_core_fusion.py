"""Tests for operator fusion (Appendix D extension)."""

import pytest

from repro.core import PerformanceModel, collocated_plan
from repro.core.fusion import auto_fuse, fuse, fusion_candidates
from repro.dsps import ExecutionGraph, LocalEngine
from repro.errors import PlanError

from tests.conftest import build_pipeline, pipeline_profiles


@pytest.fixture()
def setup():
    topology = build_pipeline()
    return topology, pipeline_profiles(topology)


class TestFuse:
    def test_fused_topology_shape(self, setup):
        topology, profiles = setup
        fused_topology, fused_profiles = fuse(topology, profiles, "stage", "fan")
        assert "stage+fan" in fused_topology.components
        assert "stage" not in fused_topology.components
        assert fused_topology.topological_order() == ["spout", "stage+fan", "sink"]

    def test_functional_equivalence(self, setup):
        """The fused DAG delivers exactly the same sink tuples."""
        topology, profiles = setup
        fused_topology, _ = fuse(topology, profiles, "stage", "fan")
        original = LocalEngine(topology).run(50).sink_received()
        fused = LocalEngine(fused_topology).run(50).sink_received()
        assert fused == original == 100  # fan selectivity 2

    def test_cost_algebra(self, setup):
        topology, profiles = setup
        _, fused_profiles = fuse(topology, profiles, "stage", "fan")
        fused = fused_profiles["stage+fan"]
        # Te = Te_stage + sel_stage * Te_fan (sel_stage = 1).
        assert fused.te_cycles == pytest.approx(400 + 800)
        # Output selectivity = sel_stage * sel_fan = 2.
        assert fused.total_selectivity == pytest.approx(2.0)
        assert fused.stream_bytes() == profiles["fan"].stream_bytes()

    def test_model_prefers_fused_on_communication_bound_pair(
        self, setup, tiny_machine
    ):
        """Fusion removes the queue+header cost from the model."""
        topology, profiles = setup
        fused_topology, fused_profiles = fuse(topology, profiles, "stage", "fan")
        rate = 1e12
        plain = PerformanceModel(profiles, tiny_machine).evaluate(
            collocated_plan(
                ExecutionGraph(topology, {n: 1 for n in topology.components})
            ),
            rate,
        )
        fused = PerformanceModel(fused_profiles, tiny_machine).evaluate(
            collocated_plan(
                ExecutionGraph(
                    fused_topology, {n: 1 for n in fused_topology.components}
                )
            ),
            rate,
        )
        # One fewer pipeline stage: the fused pair runs on one thread, so
        # peak throughput per replica drops — but per-tuple cost is lower
        # than the sum (queue cost eliminated).
        fused_task = fused.rates[1]
        plain_stage = plain.rates[1]
        plain_fan = plain.rates[2]
        assert fused_task.t_ns < plain_stage.t_ns + plain_fan.t_ns

    def test_non_exclusive_edge_rejected(self, setup):
        topology, profiles = setup
        # 'fan' -> 'sink': fine; but 'spout' -> 'stage' involves a spout.
        with pytest.raises(PlanError, match="spout"):
            fuse(topology, profiles, "spout", "stage")

    def test_diamond_edges_rejected(self, tiny_machine):
        from repro.dsps import IterableSpout, MapOperator, Sink, TopologyBuilder

        builder = TopologyBuilder("diamond")
        builder.set_spout("s", IterableSpout([(1,)]))
        builder.add_operator("a", MapOperator(lambda v: v)).shuffle_from("s")
        builder.add_operator("b", MapOperator(lambda v: v)).shuffle_from("s")
        builder.add_sink("z", Sink()).shuffle_from("a").shuffle_from("b")
        topology = builder.build()
        from repro.core import OperatorProfile, ProfileSet

        profiles = ProfileSet(
            topology,
            {
                n: OperatorProfile(n, 100, 0, {"default": 10}, {"default": 1.0})
                for n in ("s", "a", "b")
            }
            | {"z": OperatorProfile("z", 10, 0, {}, {})},
        )
        with pytest.raises(PlanError, match="must consume only"):
            fuse(topology, profiles, "a", "z")


class TestCandidates:
    def test_candidates_ranked_by_benefit(self, setup, tiny_machine):
        topology, profiles = setup
        candidates = fusion_candidates(topology, profiles, tiny_machine)
        assert candidates
        ratios = [c.benefit_ratio for c in candidates]
        assert ratios == sorted(ratios, reverse=True)

    def test_auto_fuse_converges(self, setup, tiny_machine):
        topology, profiles = setup
        fused_topology, fused_profiles, fused = auto_fuse(
            topology, profiles, tiny_machine, min_benefit=0.01
        )
        assert fused  # something got fused at a permissive threshold
        # Result is still a valid executable topology.
        run = LocalEngine(fused_topology).run(20)
        assert run.sink_received() == 40

    def test_auto_fuse_high_bar_is_noop(self, setup, tiny_machine):
        topology, profiles = setup
        fused_topology, _, fused = auto_fuse(
            topology, profiles, tiny_machine, min_benefit=1e9
        )
        assert fused == []
        assert fused_topology is topology
