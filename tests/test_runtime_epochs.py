"""Epoch barriers: checkpoint contract, parity, resume, live migration.

The barrier protocol's core guarantee is that cutting the stream into
epochs is *observationally free*: a run with barriers produces exactly
the results of a run without them, on both backends.  On top of that sit
the two consumers — the supervisor's resume-from-last-epoch recovery
(duplicate deliveries shrink from whole-run replay to one epoch) and
live migration (moving tasks between sockets at a barrier does not
change results).  See docs/reconfiguration.md.
"""

from collections import Counter as Multiset
from dataclasses import replace as dc_replace

import pytest

from repro.apps import load_application
from repro.dsps import LocalEngine
from repro.errors import ExecutionError
from repro.runtime import EpochConfig, FaultPlan, Migration, check_serializable

EVENTS = 300
INTERVAL = 100
#: Fault trigger inside the *second* epoch so resume-from-epoch has a
#: committed checkpoint to start from.
AT = 150


def build_engine(app, **kwargs):
    topology, _ = load_application(app)
    topology.component("sink").template.keep_samples = 10**6
    return LocalEngine(topology, **kwargs)


def sink_multiset(result):
    return Multiset(
        tuple(item.values)
        for sinks in result.sinks.values()
        for sink in sinks
        for item in sink.samples
    )


@pytest.fixture(scope="module")
def baselines():
    return {app: build_engine(app).run(EVENTS) for app in ("wc", "sd", "fd")}


class TestCheckSerializable:
    def test_plain_data_accepted(self):
        check_serializable(
            {
                "counts": {"a": 1, (1, 2): [0.5, True, None]},
                "blob": b"x",
                "nested": [({"k": "v"},)],
            }
        )

    @pytest.mark.parametrize("value", [set(), object(), {"x": {1, 2}}])
    def test_non_plain_data_rejected(self, value):
        with pytest.raises(ExecutionError, match="not codec-serializable"):
            check_serializable(value)

    def test_offending_path_is_named(self):
        with pytest.raises(ExecutionError, match=r"state\['deep'\]\[0\]"):
            check_serializable({"deep": [set()]})

    def test_interval_validated(self):
        with pytest.raises(ExecutionError, match="epoch interval"):
            EpochConfig(interval=0)


class TestEpochParityInline:
    """Barriers are observationally free on the inline backend."""

    @pytest.mark.parametrize("app", ["wc", "sd", "fd"])
    def test_bit_identical_results(self, app, baselines):
        result = build_engine(app, epoch_interval=INTERVAL).run(EVENTS)
        baseline = baselines[app]
        assert result.sink_received() == baseline.sink_received()
        assert sink_multiset(result) == sink_multiset(baseline)
        assert result.epochs is not None
        assert result.epochs.committed >= EVENTS // INTERVAL - 1

    def test_lr_totals_match(self):
        baseline = build_engine("lr").run(EVENTS)
        result = build_engine("lr", epoch_interval=INTERVAL).run(EVENTS)
        assert result.sink_received() == baseline.sink_received()

    def test_report_accounting(self):
        result = build_engine("wc", epoch_interval=INTERVAL).run(EVENTS)
        report = result.epochs
        assert report.interval == INTERVAL
        assert report.committed == len(
            [e for e in report.events if e["kind"] == "commit"]
        )
        assert report.snapshot_bytes > 0
        assert report.barrier_ns > 0
        assert report.migrations == 0
        assert report.resumed_from is None


class TestEpochParityProcess:
    """Per-epoch pool relaunch produces the same totals."""

    def test_process_backend_matches_inline(self, baselines):
        result = build_engine(
            "wc", backend="process", n_workers=2, epoch_interval=INTERVAL
        ).run(EVENTS)
        baseline = baselines["wc"]
        assert result.sink_received() == baseline.sink_received()
        assert sink_multiset(result) == sink_multiset(baseline)
        assert result.epochs.committed >= EVENTS // INTERVAL - 1


class TestBarrierObserver:
    """The executor's ``on_epoch`` callback sees consistent commits."""

    def _run_with_observer(self, observer):
        engine = build_engine("wc")
        return engine.backend.execute(
            engine.spec,
            EVENTS,
            engine.registry,
            epochs=EpochConfig(interval=INTERVAL),
            on_epoch=observer,
        )

    def test_commits_are_cumulative_and_ordered(self):
        commits = []
        self._run_with_observer(lambda c: commits.append(c) and None)
        assert [c.epoch for c in commits] == list(range(len(commits)))
        events = [c.events_ingested for c in commits]
        assert events == sorted(events)
        assert events[0] == INTERVAL
        # Checkpoint payloads deserialize and carry every task's state.
        payload = commits[-1].checkpoint.payload()
        assert set(payload) == {"states", "counters", "stats"}
        counter_states = [
            payload["states"][rt.task_id]
            for rt in commits[-1].spec.tasks
            if rt.component == "counter"
        ]
        assert counter_states and all("counts" in s for s in counter_states)

    def test_migration_at_barrier_preserves_results(self, baselines):
        """Moving every task to another socket mid-run changes nothing."""

        def relocate(commit):
            if commit.epoch != 1:
                return None
            moved = tuple(rt.task_id for rt in commit.spec.tasks)
            spec = dc_replace(
                commit.spec,
                tasks=tuple(
                    dc_replace(rt, socket=1) for rt in commit.spec.tasks
                ),
            )
            return Migration(spec=spec, moved=moved, detail="test shuffle")

        result = self._run_with_observer(relocate)
        assert result.epochs.migrations == 1
        assert result.epochs.migration_pause_ns > 0
        baseline = baselines["wc"]
        assert result.sink_received() == baseline.sink_received()
        assert sink_multiset(result) == sink_multiset(baseline)


class TestResumeFromEpoch:
    """Supervised retry restarts from the last committed checkpoint."""

    def _run(self, epoch_interval=None):
        return build_engine(
            "wc",
            queue_capacity=256,
            fault_plan=FaultPlan(seed=3, kinds=("crash",), at_tuple=AT),
            recovery_policy="retry",
            epoch_interval=epoch_interval,
        ).run(EVENTS)

    def test_resume_shrinks_duplicates(self, baselines):
        replayed = self._run(epoch_interval=None)
        resumed = self._run(epoch_interval=INTERVAL)
        for result in (replayed, resumed):
            assert result.recovery.completed is True
            assert result.recovery.restarts >= 1
        # Exactly-once-per-epoch: only the unfinished epoch is replayed.
        assert (
            resumed.recovery.duplicate_deliveries
            < replayed.recovery.duplicate_deliveries
        )
        assert resumed.recovery.resumed_from_epoch is not None
        assert resumed.epochs.resumed_from == resumed.recovery.resumed_from_epoch
        # And recovery stays exact.
        baseline = baselines["wc"]
        assert resumed.sink_received() == baseline.sink_received()
        assert sink_multiset(resumed) == sink_multiset(baseline)
