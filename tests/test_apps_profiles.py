"""Tests for the calibrated application profiles."""

import pytest

from repro.apps import (
    APP_NAMES,
    LOCAL_T_TARGETS_NS,
    build_application,
    load_application,
    profile_application,
)
from repro.core import BRISKSTREAM, PerformanceModel
from repro.core.scaling import saturation_ingress
from repro.errors import ProfilingError
from repro.hardware import server_a


class TestBuildApplication:
    def test_all_four_apps(self):
        for app in APP_NAMES:
            topology = build_application(app)
            assert topology.name == app

    def test_unknown_app_rejected(self):
        with pytest.raises(ProfilingError, match="unknown application"):
            build_application("nope")


class TestCalibration:
    @pytest.mark.parametrize("app", APP_NAMES)
    def test_profiles_cover_topology(self, app):
        topology, profiles = load_application(app)
        for name in topology.components:
            assert profiles[name].te_cycles > 0

    def test_wc_splitter_matches_table3_anchor(self, wc_app):
        """Te + Others at Server A's clock must hit Table 3's local T."""
        topology, profiles = wc_app
        machine = server_a()
        splitter = profiles["splitter"]
        te_ns = machine.cycles_to_ns(splitter.te_cycles)
        overhead = BRISKSTREAM.overhead_ns(0, 0, splitter.total_selectivity)
        assert te_ns + overhead == pytest.approx(1612.8, rel=0.01)

    def test_wc_counter_matches_table3_anchor(self, wc_app):
        topology, profiles = wc_app
        machine = server_a()
        counter = profiles["counter"]
        te_ns = machine.cycles_to_ns(counter.te_cycles)
        overhead = BRISKSTREAM.overhead_ns(0, 0, counter.total_selectivity)
        assert te_ns + overhead == pytest.approx(612.3, rel=0.01)

    def test_wc_selectivities_measured(self, wc_app):
        _, profiles = wc_app
        assert profiles["splitter"].stream_selectivity() == pytest.approx(10.0)
        assert profiles["parser"].stream_selectivity() == pytest.approx(1.0)

    def test_lr_dispatcher_selectivities(self, lr_app):
        _, profiles = lr_app
        dispatcher = profiles["dispatcher"]
        assert dispatcher.stream_selectivity("position_report") > 0.97
        assert dispatcher.total_selectivity == pytest.approx(1.0, abs=0.02)

    def test_caching_returns_same_objects(self):
        a = load_application("wc")
        b = load_application("wc")
        assert a[0] is b[0]
        assert a[1] is b[1]

    def test_profile_application_rejects_unknown_targets(self):
        from repro.dsps import IterableSpout, Sink, TopologyBuilder

        builder = TopologyBuilder("custom")
        builder.set_spout("s", IterableSpout([("x",)]))
        builder.add_sink("z", Sink()).shuffle_from("s")
        with pytest.raises(ProfilingError, match="no calibration targets"):
            profile_application(builder.build())


class TestThroughputOrdering:
    def test_saturation_order_matches_paper(self):
        """Per-event cost ordering implies WC >> SD > LR-ish > FD ingress."""
        machine = server_a()
        rates = {}
        for app in APP_NAMES:
            topology, profiles = load_application(app)
            model = PerformanceModel(profiles, machine)
            rates[app] = saturation_ingress(topology, model)
        assert rates["wc"] > rates["sd"] > rates["fd"]
        assert rates["lr"] < rates["fd"]  # LR's pipeline is the heaviest
